//! A minimal JSON value type with a hand-rolled parser and writer.
//!
//! The job server speaks newline-delimited JSON over TCP and must build
//! **fully offline**, so the wire format cannot depend on serde. This
//! module implements exactly what the protocol needs: the six JSON value
//! kinds, a recursive-descent parser, and a writer whose float rendering
//! (`{:?}`, Rust's shortest-roundtrip formatting) guarantees that every
//! finite `f64` survives a serialize → parse round trip **bit-exactly**
//! — the property the service's "cached results are bit-identical"
//! contract rests on.
//!
//! # Examples
//!
//! ```
//! use drmap_service::json::Json;
//!
//! let v = Json::parse(r#"{"id": 7, "nets": ["alexnet", "vgg16"]}"#)?;
//! assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
//! assert_eq!(v.get("nets").unwrap().as_array().unwrap().len(), 2);
//! # Ok::<(), drmap_service::json::JsonError>(())
//! ```

use core::fmt;

/// A JSON parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    message: String,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key–value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key–value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number from a `u64` (exact for values below 2⁵³).
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Build a number from a `usize` (exact for values below 2⁵³).
    pub fn num_usize(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as an exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(p.pos, "trailing characters"));
        }
        Ok(value)
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; the protocol never produces them, but a
        // defensive null beats emitting an unparsable token.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact bit pattern through `str::parse::<f64>()`.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The protocol's own
/// documents nest 4 deep; the cap exists because the parser recurses
/// per nesting level and serves untrusted TCP input — without it, a
/// single `[[[[…` line could overflow the handler thread's stack and
/// abort the whole process.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::new(
                self.pos,
                format!("nesting deeper than {MAX_DEPTH}"),
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                self.pos,
                format!("expected {:?}", b as char),
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(self.pos, format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(JsonError::new(self.pos, "unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(JsonError::new(
                self.pos,
                format!("unexpected character {:?}", b as char),
            )),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new(start, "invalid number"))?;
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(start, format!("invalid number {token:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(JsonError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| JsonError::new(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(JsonError::new(self.pos, "invalid surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    JsonError::new(self.pos, "invalid code point")
                                })?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(
                                self.pos - 1,
                                format!("invalid escape {:?}", other as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new(self.pos, "invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let token = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| JsonError::new(self.pos, "truncated \\u escape"))?;
        let code = u32::from_str_radix(token, 16)
            .map_err(|_| JsonError::new(self.pos, format!("invalid \\u escape {token:?}")))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash \t ünïcode \u{1}";
        let rendered = Json::str(original).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::str(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            1.234e-9_f64,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            9.007199254740993e15,
            -3.3e300,
        ] {
            let rendered = Json::Num(bits).render();
            let reparsed = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(reparsed.to_bits(), bits.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::num_u64(37_748_736).render(), "37748736");
        assert_eq!(Json::Num(-5.0).render(), "-5");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("[1, ").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let hostile = "[".repeat(50_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Depth within the cap still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // Sibling containers don't accumulate depth.
        let siblings = "[[1],[2],[3]]";
        assert!(Json::parse(siblings).is_ok());
    }

    #[test]
    fn objects_preserve_order_and_render_compactly() {
        let v = Json::obj([("z", Json::num_u64(1)), ("a", Json::num_u64(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
