//! Typed job requests and results, with their JSON wire representation.
//!
//! A [`JobSpec`] names a workload (a zoo network, an inline layer list, a
//! `drmap-cnn` text spec, or a single layer) and the engine to explore it
//! on (DRAM architecture × optimization objective). A [`JobResult`]
//! carries the per-layer minimum-objective configurations plus the
//! accumulated totals — bit-identical to what a direct
//! [`DseEngine::explore_network`](drmap_core::dse::DseEngine::explore_network)
//! call returns, whether the layers were computed or served from cache.

use drmap_cnn::layer::{Layer, LayerKind};
use drmap_cnn::network::Network;
use drmap_core::dse::Objective;
use drmap_core::edp::EdpEstimate;
use drmap_core::pareto::DesignPoint;
use drmap_core::tiling::Tiling;
use drmap_dram::timing::DramArch;

use crate::error::ServiceError;
use crate::json::Json;

/// How a job interacts with the shared layer memo cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Normal lookup: resident tier, then store tier, then compute
    /// (the pre-options behavior).
    #[default]
    Default,
    /// Skip the cache entirely: compute fresh, store nothing. For
    /// measurement jobs that must not disturb (or be served by) the
    /// cache.
    Bypass,
    /// Skip the lookup but keep the write path: compute fresh, then
    /// replace the cached (and persisted) entry. For invalidating a
    /// result an operator no longer trusts.
    Refresh,
}

impl CacheMode {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            CacheMode::Default => "default",
            CacheMode::Bypass => "bypass",
            CacheMode::Refresh => "refresh",
        }
    }

    /// Parse a [`CacheMode::label`] string.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "default" => Some(CacheMode::Default),
            "bypass" => Some(CacheMode::Bypass),
            "refresh" => Some(CacheMode::Refresh),
            _ => None,
        }
    }
}

/// Per-job execution options, carried in a job request's `options`
/// object. Everything defaults to the pre-options behavior, and the
/// wire representation omits default fields — a job with default
/// options serializes byte-identically to a pre-options job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobOptions {
    /// How this job's layers interact with the memo cache.
    pub cache: CacheMode,
    /// Keep the per-layer Pareto front over (energy, latency) and
    /// return it in the result (`pareto` on each layer outcome). Keyed
    /// into the cache separately from point-free sweeps.
    pub keep_points: bool,
    /// Explicit tiling-chunk size for intra-layer sharding, overriding
    /// the pool's [`ShardPolicy`](crate::pool::ShardPolicy) for this
    /// job (clamped to at least 1; `None` defers to the pool).
    pub shard_chunk: Option<usize>,
    /// Budget for the whole job, measured from the moment the server
    /// accepts it. Work still queued or between shard chunks when the
    /// budget lapses is abandoned and the job answers with a typed
    /// `deadline_exceeded` error. `None` (the default) never expires.
    pub deadline_ms: Option<u64>,
    /// Restrict the sweep to a contiguous `[start, end)` subrange of
    /// each layer's tiling enumeration (clamped to the enumeration's
    /// length). The unit of *cross-node* sharding: `drmap-router
    /// --scatter` splits one oversized layer into disjoint ranges,
    /// sends each to a different backend, and merges the partial
    /// outcomes exactly. Ranged results are cache-keyed separately
    /// from full sweeps, so a partial can never poison the full
    /// layer's memo entry. `None` (the default) sweeps everything.
    pub tiling_range: Option<(u64, u64)>,
}

impl JobOptions {
    /// Wire representation; `None` when every field is the default (so
    /// default-option jobs serialize exactly as before options existed).
    pub fn to_json(&self) -> Option<Json> {
        if *self == JobOptions::default() {
            return None;
        }
        let mut pairs = Vec::new();
        if self.cache != CacheMode::Default {
            pairs.push(("cache".to_owned(), Json::str(self.cache.label())));
        }
        if self.keep_points {
            pairs.push(("keep_points".to_owned(), Json::Bool(true)));
        }
        if let Some(chunk) = self.shard_chunk {
            pairs.push(("shard_chunk".to_owned(), Json::num_usize(chunk)));
        }
        if let Some(deadline) = self.deadline_ms {
            pairs.push(("deadline_ms".to_owned(), Json::num_u64(deadline)));
        }
        if let Some((start, end)) = self.tiling_range {
            pairs.push((
                "tiling_range".to_owned(),
                Json::Arr(vec![Json::num_u64(start), Json::num_u64(end)]),
            ));
        }
        Some(Json::Obj(pairs))
    }

    /// Parse the wire representation. Every field is optional; a field
    /// that is *present* must be well-formed (a malformed cache mode
    /// must not silently run with the default and pollute the cache).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] for mistyped fields or
    /// unknown cache-mode labels.
    pub fn from_json(v: &Json) -> Result<Self, ServiceError> {
        let mut options = JobOptions::default();
        if let Some(field) = v.get("cache") {
            let label = field
                .as_str()
                .ok_or_else(|| ServiceError::protocol("\"cache\" must be a string"))?;
            options.cache = CacheMode::from_label(label).ok_or_else(|| {
                ServiceError::protocol(format!(
                    "unknown cache mode {label:?} (expected default/bypass/refresh)"
                ))
            })?;
        }
        if let Some(field) = v.get("keep_points") {
            options.keep_points = field
                .as_bool()
                .ok_or_else(|| ServiceError::protocol("\"keep_points\" must be a boolean"))?;
        }
        if let Some(field) = v.get("shard_chunk") {
            let chunk = field.as_usize().filter(|&n| n > 0).ok_or_else(|| {
                ServiceError::protocol("\"shard_chunk\" must be a positive integer")
            })?;
            options.shard_chunk = Some(chunk);
        }
        if let Some(field) = v.get("deadline_ms") {
            let deadline = field.as_u64().filter(|&n| n > 0).ok_or_else(|| {
                ServiceError::protocol("\"deadline_ms\" must be a positive integer")
            })?;
            options.deadline_ms = Some(deadline);
        }
        if let Some(field) = v.get("tiling_range") {
            let err = || {
                ServiceError::protocol(
                    "\"tiling_range\" must be a two-element [start, end) integer array \
                     with start < end",
                )
            };
            let arr = field.as_array().filter(|a| a.len() == 2).ok_or_else(err)?;
            let start = arr[0].as_u64().ok_or_else(err)?;
            let end = arr[1].as_u64().ok_or_else(err)?;
            if start >= end {
                return Err(err());
            }
            options.tiling_range = Some((start, end));
        }
        Ok(options)
    }
}

/// Which profiled engine a job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSpec {
    /// DRAM architecture to profile against.
    pub arch: DramArch,
    /// Optimization objective (Algorithm 1 minimizes this).
    pub objective: Objective,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            arch: DramArch::Salp2,
            objective: Objective::Edp,
        }
    }
}

impl EngineSpec {
    /// An engine spec for the given architecture, EDP objective.
    pub fn for_arch(arch: DramArch) -> Self {
        EngineSpec {
            arch,
            ..EngineSpec::default()
        }
    }

    /// Wire representation: `{"arch": "SALP-2", "objective": "edp"}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("arch", Json::str(self.arch.label())),
            ("objective", Json::str(self.objective.label())),
        ])
    }

    /// Parse the wire representation; both fields are optional and
    /// default to SALP-2 / EDP. A field that is *present* must be a
    /// string with a known label — silently substituting a default for
    /// a malformed field would return results for the wrong engine.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] for non-string fields or
    /// unknown labels.
    pub fn from_json(v: &Json) -> Result<Self, ServiceError> {
        let mut spec = EngineSpec::default();
        if let Some(field) = v.get("arch") {
            let label = field
                .as_str()
                .ok_or_else(|| ServiceError::protocol("\"arch\" must be a string"))?;
            spec.arch = DramArch::ALL
                .into_iter()
                .find(|a| a.label().eq_ignore_ascii_case(label))
                .ok_or_else(|| {
                    ServiceError::protocol(format!(
                        "unknown arch {label:?} (expected one of DDR3/SALP-1/SALP-2/SALP-MASA)"
                    ))
                })?;
        }
        if let Some(field) = v.get("objective") {
            let label = field
                .as_str()
                .ok_or_else(|| ServiceError::protocol("\"objective\" must be a string"))?;
            spec.objective =
                Objective::from_label(&label.to_ascii_lowercase()).ok_or_else(|| {
                    ServiceError::protocol(format!(
                        "unknown objective {label:?} (expected edp/energy/delay/ed2p)"
                    ))
                })?;
        }
        Ok(spec)
    }
}

/// What a job explores: a whole network or a single layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Explore every layer of a network.
    Network(Network),
    /// Explore one layer.
    Layer(Layer),
}

impl Workload {
    /// Display name (network name or layer name).
    pub fn name(&self) -> &str {
        match self {
            Workload::Network(n) => n.name(),
            Workload::Layer(l) => &l.name,
        }
    }

    /// The layers to explore, in order.
    pub fn layers(&self) -> &[Layer] {
        match self {
            Workload::Network(n) => n.layers(),
            Workload::Layer(l) => std::slice::from_ref(l),
        }
    }
}

fn layer_to_json(layer: &Layer) -> Json {
    Json::obj([
        ("name", Json::str(&layer.name)),
        (
            "kind",
            Json::str(match layer.kind {
                LayerKind::Conv => "conv",
                LayerKind::FullyConnected => "fc",
            }),
        ),
        ("h", Json::num_usize(layer.h)),
        ("w", Json::num_usize(layer.w)),
        ("j", Json::num_usize(layer.j)),
        ("i", Json::num_usize(layer.i)),
        ("p", Json::num_usize(layer.p)),
        ("q", Json::num_usize(layer.q)),
        ("stride", Json::num_usize(layer.stride)),
        ("groups", Json::num_usize(layer.groups)),
    ])
}

fn dim(v: &Json, field: &str, default: Option<usize>) -> Result<usize, ServiceError> {
    match v.get(field) {
        Some(n) => n.as_usize().ok_or_else(|| {
            ServiceError::protocol(format!(
                "layer field {field:?} must be a non-negative integer"
            ))
        }),
        None => default
            .ok_or_else(|| ServiceError::protocol(format!("layer is missing field {field:?}"))),
    }
}

fn layer_from_json(v: &Json) -> Result<Layer, ServiceError> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::protocol("layer is missing \"name\""))?;
    let kind = v.get("kind").and_then(Json::as_str).unwrap_or("conv");
    let layer = match kind {
        "fc" => Layer::fully_connected(name, dim(v, "i", None)?, dim(v, "j", None)?),
        "conv" => {
            let mut layer = Layer::conv(
                name,
                dim(v, "h", None)?,
                dim(v, "w", None)?,
                dim(v, "j", None)?,
                dim(v, "i", None)?,
                dim(v, "p", None)?,
                dim(v, "q", None)?,
                dim(v, "stride", Some(1))?,
            );
            layer.groups = dim(v, "groups", Some(1))?;
            layer
        }
        other => {
            return Err(ServiceError::protocol(format!(
                "unknown layer kind {other:?} (expected conv/fc)"
            )))
        }
    };
    layer.validate()?;
    Ok(layer)
}

fn network_from_json(v: &Json) -> Result<Network, ServiceError> {
    if let Some(model) = v.get("model").and_then(Json::as_str) {
        return Network::by_name(model).ok_or_else(|| {
            let known: Vec<&str> = Network::zoo().into_iter().map(|(n, _)| n).collect();
            ServiceError::protocol(format!(
                "unknown model {model:?} (known: {})",
                known.join(", ")
            ))
        });
    }
    if let Some(text) = v.get("spec").and_then(Json::as_str) {
        return Ok(drmap_cnn::spec::parse_network(text)?);
    }
    if let Some(layers) = v.get("layers").and_then(Json::as_array) {
        let name = v.get("name").and_then(Json::as_str).unwrap_or("custom");
        let layers = layers
            .iter()
            .map(layer_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Network::new(name, layers)?);
    }
    Err(ServiceError::protocol(
        "network needs \"model\", \"spec\", or \"layers\"",
    ))
}

/// One job: a workload plus the engine to run it on.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen id, echoed in the result.
    pub id: u64,
    /// Engine selection.
    pub engine: EngineSpec,
    /// What to explore.
    pub workload: Workload,
    /// Per-job execution options (cache mode, Pareto retention,
    /// shard-chunk hint); defaults reproduce the pre-options behavior.
    pub options: JobOptions,
}

impl JobSpec {
    /// A network-exploration job with default options.
    pub fn network(id: u64, engine: EngineSpec, network: Network) -> Self {
        JobSpec {
            id,
            engine,
            workload: Workload::Network(network),
            options: JobOptions::default(),
        }
    }

    /// A single-layer job with default options.
    pub fn layer(id: u64, engine: EngineSpec, layer: Layer) -> Self {
        JobSpec {
            id,
            engine,
            workload: Workload::Layer(layer),
            options: JobOptions::default(),
        }
    }

    /// The same job with the given options.
    pub fn with_options(mut self, options: JobOptions) -> Self {
        self.options = options;
        self
    }

    /// Wire representation (see crate docs for the schema).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_owned(), Json::num_u64(self.id)),
            ("engine".to_owned(), self.engine.to_json()),
        ];
        match &self.workload {
            Workload::Network(n) => {
                // Prefer the compact zoo reference when the network is a
                // preset; otherwise ship the full layer list.
                let zoo_name = Network::zoo()
                    .into_iter()
                    .find(|(_, build)| &build() == n)
                    .map(|(name, _)| name);
                let net_json = match zoo_name {
                    Some(name) => Json::obj([("model", Json::str(name))]),
                    None => Json::obj([
                        ("name", Json::str(n.name())),
                        (
                            "layers",
                            Json::Arr(n.layers().iter().map(layer_to_json).collect()),
                        ),
                    ]),
                };
                pairs.push(("network".to_owned(), net_json));
            }
            Workload::Layer(l) => pairs.push(("layer".to_owned(), layer_to_json(l))),
        }
        if let Some(options) = self.options.to_json() {
            pairs.push(("options".to_owned(), options));
        }
        Json::Obj(pairs)
    }

    /// Parse the wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] for missing/unknown fields.
    pub fn from_json(v: &Json) -> Result<Self, ServiceError> {
        // A present-but-malformed id must not silently become 0: the id
        // is the client's request/response correlation key.
        let id = match v.get("id") {
            Some(field) => field
                .as_u64()
                .ok_or_else(|| ServiceError::protocol("\"id\" must be a non-negative integer"))?,
            None => 0,
        };
        let engine = match v.get("engine") {
            Some(e) => EngineSpec::from_json(e)?,
            None => EngineSpec::default(),
        };
        let workload = match (v.get("network"), v.get("layer")) {
            (Some(n), None) => Workload::Network(network_from_json(n)?),
            (None, Some(l)) => Workload::Layer(layer_from_json(l)?),
            (Some(_), Some(_)) => {
                return Err(ServiceError::protocol(
                    "job has both \"network\" and \"layer\"",
                ))
            }
            (None, None) => {
                return Err(ServiceError::protocol(
                    "job needs a \"network\" or \"layer\" workload",
                ))
            }
        };
        let options = match v.get("options") {
            Some(o) => JobOptions::from_json(o)?,
            None => JobOptions::default(),
        };
        Ok(JobSpec {
            id,
            engine,
            workload,
            options,
        })
    }
}

fn estimate_to_json(e: &EdpEstimate) -> Json {
    Json::obj([
        ("cycles", Json::Num(e.cycles)),
        ("energy", Json::Num(e.energy)),
        ("t_ck_ns", Json::Num(e.t_ck_ns)),
        // Derived, for human readers; ignored when parsing.
        ("edp", Json::Num(e.edp())),
    ])
}

fn estimate_from_json(v: &Json) -> Result<EdpEstimate, ServiceError> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| ServiceError::protocol(format!("estimate is missing {name:?}")))
    };
    Ok(EdpEstimate {
        cycles: field("cycles")?,
        energy: field("energy")?,
        t_ck_ns: field("t_ck_ns")?,
    })
}

/// The winning configuration for one layer of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerOutcome {
    /// Layer name, as submitted.
    pub name: String,
    /// Winning mapping policy (Table I name).
    pub mapping: String,
    /// Winning scheduling scheme label.
    pub scheme: String,
    /// Winning tiling.
    pub tiling: Tiling,
    /// The winning configuration's estimate.
    pub estimate: EdpEstimate,
    /// Configurations evaluated by the sweep that produced this result
    /// (a cached result retains the original sweep's count).
    pub evaluations: u64,
    /// True if this layer was served from the memo cache.
    pub cached: bool,
    /// True if this layer was served by coalescing onto another job's
    /// in-flight computation of the same shape (single-flight).
    pub coalesced: bool,
    /// True if this layer was served from the persistent result store
    /// (computed by some earlier process, revived from disk).
    pub store_hit: bool,
    /// Pareto front over (energy, latency), present only when the job
    /// asked for it ([`JobOptions::keep_points`]); empty otherwise and
    /// omitted from the wire when empty, so point-free responses stay
    /// byte-identical to the pre-options protocol.
    pub pareto: Vec<DesignPoint>,
}

impl LayerOutcome {
    fn to_json(&self) -> Json {
        let mut json = Json::obj([
            ("name", Json::str(&self.name)),
            ("mapping", Json::str(&self.mapping)),
            ("scheme", Json::str(&self.scheme)),
            (
                "tiling",
                Json::obj([
                    ("th", Json::num_usize(self.tiling.th)),
                    ("tw", Json::num_usize(self.tiling.tw)),
                    ("tj", Json::num_usize(self.tiling.tj)),
                    ("ti", Json::num_usize(self.tiling.ti)),
                ]),
            ),
            ("estimate", estimate_to_json(&self.estimate)),
            ("evaluations", Json::num_u64(self.evaluations)),
            ("cached", Json::Bool(self.cached)),
            ("coalesced", Json::Bool(self.coalesced)),
            ("store", Json::Bool(self.store_hit)),
        ]);
        if !self.pareto.is_empty() {
            let points = self
                .pareto
                .iter()
                .map(|p| {
                    Json::obj([
                        ("label", Json::str(&p.label)),
                        ("estimate", estimate_to_json(&p.estimate)),
                    ])
                })
                .collect();
            match &mut json {
                Json::Obj(pairs) => pairs.push(("pareto".to_owned(), Json::Arr(points))),
                _ => unreachable!("LayerOutcome::to_json builds an object"),
            }
        }
        json
    }

    fn from_json(v: &Json) -> Result<Self, ServiceError> {
        let text = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ServiceError::protocol(format!("layer outcome missing {name:?}")))
        };
        let t = v
            .get("tiling")
            .ok_or_else(|| ServiceError::protocol("layer outcome missing \"tiling\""))?;
        let step = |name: &str| {
            t.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ServiceError::protocol(format!("tiling missing {name:?}")))
        };
        Ok(LayerOutcome {
            name: text("name")?,
            mapping: text("mapping")?,
            scheme: text("scheme")?,
            tiling: Tiling::new(step("th")?, step("tw")?, step("tj")?, step("ti")?),
            estimate: estimate_from_json(
                v.get("estimate")
                    .ok_or_else(|| ServiceError::protocol("layer outcome missing \"estimate\""))?,
            )?,
            evaluations: v.get("evaluations").and_then(Json::as_u64).unwrap_or(0),
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            coalesced: v.get("coalesced").and_then(Json::as_bool).unwrap_or(false),
            store_hit: v.get("store").and_then(Json::as_bool).unwrap_or(false),
            pareto: match v.get("pareto").and_then(Json::as_array) {
                Some(points) => points
                    .iter()
                    .map(|p| {
                        let label = p.get("label").and_then(Json::as_str).ok_or_else(|| {
                            ServiceError::protocol("pareto point missing \"label\"")
                        })?;
                        let estimate = estimate_from_json(p.get("estimate").ok_or_else(|| {
                            ServiceError::protocol("pareto point missing \"estimate\"")
                        })?)?;
                        Ok(DesignPoint::new(label, estimate))
                    })
                    .collect::<Result<Vec<_>, ServiceError>>()?,
                None => Vec::new(),
            },
        })
    }
}

/// The result of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Echoed job id.
    pub id: u64,
    /// Workload name.
    pub workload: String,
    /// Sum of the per-layer winning estimates, in layer order.
    pub total: EdpEstimate,
    /// Per-layer winners, in workload order.
    pub layers: Vec<LayerOutcome>,
}

impl JobResult {
    /// Layers served from the memo cache.
    pub fn cache_hits(&self) -> usize {
        self.layers.iter().filter(|l| l.cached).count()
    }

    /// Layers served by coalescing onto an in-flight computation.
    pub fn coalesced_hits(&self) -> usize {
        self.layers.iter().filter(|l| l.coalesced).count()
    }

    /// Layers served from the persistent result store.
    pub fn store_hits(&self) -> usize {
        self.layers.iter().filter(|l| l.store_hit).count()
    }

    /// Wire representation.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::num_u64(self.id)),
            ("workload", Json::str(&self.workload)),
            ("total", estimate_to_json(&self.total)),
            (
                "layers",
                Json::Arr(self.layers.iter().map(LayerOutcome::to_json).collect()),
            ),
        ])
    }

    /// Parse the wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] for missing fields.
    pub fn from_json(v: &Json) -> Result<Self, ServiceError> {
        Ok(JobResult {
            id: v.get("id").and_then(Json::as_u64).unwrap_or(0),
            workload: v
                .get("workload")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            total: estimate_from_json(
                v.get("total")
                    .ok_or_else(|| ServiceError::protocol("result missing \"total\""))?,
            )?,
            layers: v
                .get("layers")
                .and_then(Json::as_array)
                .ok_or_else(|| ServiceError::protocol("result missing \"layers\""))?
                .iter()
                .map(LayerOutcome::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_spec_round_trips_every_arch_and_objective() {
        for arch in DramArch::ALL {
            for objective in Objective::ALL {
                let spec = EngineSpec { arch, objective };
                let parsed = EngineSpec::from_json(&spec.to_json()).unwrap();
                assert_eq!(parsed, spec);
            }
        }
    }

    #[test]
    fn engine_spec_defaults_and_rejects_unknowns() {
        let spec = EngineSpec::from_json(&Json::obj([])).unwrap();
        assert_eq!(spec, EngineSpec::default());
        let bad = Json::obj([("arch", Json::str("HBM3"))]);
        assert!(EngineSpec::from_json(&bad).is_err());
        let bad = Json::obj([("objective", Json::str("speed"))]);
        assert!(EngineSpec::from_json(&bad).is_err());
    }

    #[test]
    fn present_but_mistyped_fields_are_errors_not_defaults() {
        // A numeric arch must not silently fall back to SALP-2.
        let bad = Json::obj([("arch", Json::num_u64(5))]);
        assert!(EngineSpec::from_json(&bad).is_err());
        let bad = Json::obj([("objective", Json::Bool(true))]);
        assert!(EngineSpec::from_json(&bad).is_err());
        // A string id must not silently become 0 (it is the client's
        // request/response correlation key).
        let v = Json::parse(r#"{"id": "42", "network": {"model": "tiny"}}"#).unwrap();
        let err = JobSpec::from_json(&v).unwrap_err();
        assert!(err.to_string().contains("id"), "{err}");
        // An absent id still defaults to 0.
        let v = Json::parse(r#"{"network": {"model": "tiny"}}"#).unwrap();
        assert_eq!(JobSpec::from_json(&v).unwrap().id, 0);
    }

    #[test]
    fn job_spec_round_trips_zoo_and_custom_networks() {
        let zoo = JobSpec::network(3, EngineSpec::default(), Network::alexnet());
        let rendered = zoo.to_json().render();
        assert!(rendered.contains("\"model\":\"alexnet\""), "{rendered}");
        assert_eq!(JobSpec::from_json(&zoo.to_json()).unwrap(), zoo);

        let custom = JobSpec::network(
            4,
            EngineSpec::for_arch(DramArch::Ddr3),
            Network::new(
                "custom",
                vec![
                    Layer::conv("C1", 8, 8, 16, 3, 3, 3, 1),
                    Layer::conv_grouped("DW", 8, 8, 16, 16, 3, 3, 1, 16),
                    Layer::fully_connected("F", 1024, 10),
                ],
            )
            .unwrap(),
        );
        assert_eq!(JobSpec::from_json(&custom.to_json()).unwrap(), custom);
    }

    #[test]
    fn job_spec_accepts_text_specs_and_single_layers() {
        let v =
            Json::parse(r#"{"id": 9, "network": {"spec": "network t\nconv C 8 8 16 3 3 3 1\n"}}"#)
                .unwrap();
        let job = JobSpec::from_json(&v).unwrap();
        assert_eq!(job.workload.name(), "t");
        assert_eq!(job.workload.layers().len(), 1);

        let layer = JobSpec::layer(
            1,
            EngineSpec::default(),
            Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1),
        );
        assert_eq!(JobSpec::from_json(&layer.to_json()).unwrap(), layer);
    }

    #[test]
    fn job_spec_rejects_malformed_workloads() {
        for bad in [
            r#"{"id": 1}"#,
            r#"{"network": {"model": "no-such"}}"#,
            r#"{"network": {}}"#,
            r#"{"layer": {"name": "x", "kind": "pool"}}"#,
            r#"{"layer": {"kind": "fc", "i": 4, "j": 2}}"#,
            r#"{"layer": {"name": "x", "kind": "fc", "i": 0, "j": 2}}"#,
            r#"{"network": {"model": "tiny"}, "layer": {"name": "x", "kind": "fc", "i": 1, "j": 1}}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn job_options_round_trip_and_default_is_invisible_on_the_wire() {
        // Default options must not appear in the rendered job at all —
        // the byte-compatibility contract with pre-options clients.
        let plain = JobSpec::network(3, EngineSpec::default(), Network::tiny());
        assert!(!plain.to_json().render().contains("options"));
        assert_eq!(JobSpec::from_json(&plain.to_json()).unwrap(), plain);

        for options in [
            JobOptions {
                cache: CacheMode::Bypass,
                ..JobOptions::default()
            },
            JobOptions {
                cache: CacheMode::Refresh,
                keep_points: true,
                shard_chunk: Some(32),
                deadline_ms: Some(1500),
                tiling_range: Some((8, 72)),
            },
            JobOptions {
                keep_points: true,
                ..JobOptions::default()
            },
            JobOptions {
                deadline_ms: Some(250),
                ..JobOptions::default()
            },
            JobOptions {
                tiling_range: Some((0, 64)),
                ..JobOptions::default()
            },
        ] {
            let spec =
                JobSpec::network(4, EngineSpec::default(), Network::tiny()).with_options(options);
            let reparsed = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(reparsed, spec);
            assert_eq!(reparsed.options, options);
        }
    }

    #[test]
    fn malformed_job_options_are_errors_not_defaults() {
        for bad in [
            r#"{"network": {"model": "tiny"}, "options": {"cache": "sometimes"}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"cache": 1}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"keep_points": "yes"}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"shard_chunk": 0}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"shard_chunk": -4}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"deadline_ms": 0}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"deadline_ms": "soon"}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"tiling_range": [4]}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"tiling_range": [8, 8]}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"tiling_range": [9, 4]}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"tiling_range": ["0", "9"]}}"#,
            r#"{"network": {"model": "tiny"}, "options": {"tiling_range": 16}}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "accepted {bad}");
        }
        for mode in [CacheMode::Default, CacheMode::Bypass, CacheMode::Refresh] {
            assert_eq!(CacheMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(CacheMode::from_label("write-around"), None);
    }

    #[test]
    fn job_result_round_trips_bit_exactly() {
        let result = JobResult {
            id: 11,
            workload: "TinyNet".into(),
            total: EdpEstimate {
                cycles: 123456.75,
                energy: 1.2345e-7,
                t_ck_ns: 1.25,
            },
            layers: vec![LayerOutcome {
                name: "CONV1".into(),
                mapping: "Mapping-3 (DRMap)".into(),
                scheme: "adaptive-reuse".into(),
                tiling: Tiling::new(13, 13, 16, 16),
                estimate: EdpEstimate {
                    cycles: 0.1 + 0.2,
                    energy: 3.3e-9,
                    t_ck_ns: 1.25,
                },
                evaluations: 4242,
                cached: true,
                coalesced: false,
                store_hit: true,
                pareto: vec![DesignPoint::new(
                    "t13x13x16x16/ofms-reuse/Mapping-3 (DRMap)",
                    EdpEstimate {
                        cycles: 7.5,
                        energy: 1.25e-9,
                        t_ck_ns: 1.25,
                    },
                )],
            }],
        };
        let rendered = result.to_json().render();
        let reparsed = JobResult::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(reparsed, result);
        assert_eq!(
            reparsed.layers[0].estimate.cycles.to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(reparsed.cache_hits(), 1);
        assert_eq!(reparsed.store_hits(), 1);
    }
}
