//! The worker-pool execution engine.
//!
//! Layer-wise DSE is embarrassingly parallel: a network job decomposes
//! into independent per-layer explorations. The pool exploits that by
//! sharding every submitted job into layer tasks on one shared queue,
//! so a batch of jobs keeps all workers busy end-to-end — small jobs
//! don't wait for big ones and a single straggler layer cannot idle the
//! rest of the pool (contrast with
//! [`DseEngine::explore_network`](drmap_core::dse::DseEngine::explore_network),
//! which runs a bounded worker crew inside one process-wide call).
//!
//! ## Intra-layer sharding
//!
//! A single huge layer (AlexNet FC6, say) used to be one indivisible
//! task — one worker ground through its whole tiling × scheme × mapping
//! sweep while the rest of the pool idled. Now a worker that picks up a
//! layer whose tiling enumeration crosses [`ShardPolicy::min_tilings`]
//! splits the range into chunks, posts *help tokens* onto the shared
//! queue, and claims chunks itself from a shared counter. Idle workers
//! that pick up a token join in; each chunk becomes a
//! [`DseEngine::explore_layer_range`] partial, and the leader merges
//! them in range order — an exact merge, so the assembled
//! [`LayerDseResult`](drmap_core::dse::LayerDseResult) is bit-identical
//! to a sequential `explore_layer`. The scheme is deadlock-free by
//! construction: the leader only ever *waits* for chunks that some
//! worker has already claimed and is actively computing (unclaimed
//! chunks it claims itself), and help tokens arriving after the shard
//! drained are no-ops.
//!
//! Determinism: workers may *compute* layers (and chunks) in any order,
//! but results are reassembled in layer (and range) order and totals
//! are accumulated exactly as the direct engine does, so a job's
//! [`JobResult`] is bit-identical to a sequential run — cached, pooled,
//! sharded, or direct.

use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drmap_cnn::layer::Layer;
use drmap_core::dse::{LayerDseResult, LayerPartial, SharedEngine};
use drmap_core::edp::EdpEstimate;
use drmap_core::error::DseError;
use drmap_core::tiling::{enumerate_tilings, Tiling};
use drmap_telemetry::{Histogram, Span, Trace};

use crate::cache::CacheOutcome;
use crate::engine::{outcome_from_result, ServiceState};
use crate::error::{panic_message, ServiceError, DEADLINE_MARKER};
use crate::spec::{JobOptions, JobResult, JobSpec};
use crate::sync::lock_recovered;

type LayerReply = (usize, Result<(LayerDseResult, CacheOutcome), DseError>);

/// A job's absolute latency budget, captured at submission. Workers
/// check it at dequeue (a queued layer whose budget lapsed is never
/// computed) and between claimed shard chunks; an expired check raises
/// a [`DEADLINE_MARKER`]-tagged [`DseError`] that
/// [`PendingJob::wait`] lifts back into the typed
/// [`ServiceError::DeadlineExceeded`](crate::error::ServiceError).
#[derive(Debug, Clone, Copy)]
struct Deadline {
    at: Instant,
    ms: u64,
}

impl Deadline {
    fn of(options: &JobOptions) -> Option<Deadline> {
        options.deadline_ms.map(|ms| Deadline {
            at: Instant::now() + Duration::from_millis(ms),
            ms,
        })
    }

    fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    fn error(&self) -> DseError {
        DseError::new(format!("{DEADLINE_MARKER}{} ms", self.ms))
    }
}

struct LayerTask {
    state: Arc<ServiceState>,
    engine: SharedEngine,
    tag: Arc<str>,
    layer: Layer,
    index: usize,
    options: JobOptions,
    deadline: Option<Deadline>,
    /// An armed fault plan chose this task's job as its panic victim:
    /// the worker panics instead of exploring, and the existing
    /// catch-everything reply path must surface a typed job error.
    inject_panic: bool,
    /// The submitting request's trace, when the front-end attached one:
    /// the worker's cache-lookup/explore spans add themselves to its
    /// per-stage breakdown.
    trace: Option<Arc<Trace>>,
    reply: Sender<LayerReply>,
}

/// What travels on the pool's shared queue: a whole-layer exploration,
/// or an invitation to help with another worker's sharded layer.
// Boxing `LayerTask` would trade the size skew for a heap allocation on
// every layer enqueue; tasks are short-lived and the queue shallow.
#[allow(clippy::large_enum_variant)]
enum Task {
    Layer(LayerTask),
    Help(Arc<Shard>),
}

/// When and how finely the pool shards one layer's tiling range.
///
/// The policy is **live**: [`DsePool::set_shard_policy`] retunes it on
/// a running pool (the `set-shard-policy` admin verb), taking effect on
/// the next layer a worker picks up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Only layers with at least this many feasible tilings shard;
    /// below it, chunking overhead outweighs the parallelism.
    pub min_tilings: usize,
    /// Target chunks per pool worker. Over-decomposing (the default is
    /// 3) keeps the chunks short enough that late-joining helpers still
    /// find work and stragglers don't serialize the merge.
    pub chunks_per_worker: usize,
    /// Explicit chunk size (tilings per chunk), overriding the
    /// `chunks_per_worker` derivation when set. `None` (the default)
    /// derives the chunk size from the worker count; jobs can override
    /// either with their own hint
    /// ([`JobOptions::shard_chunk`](crate::spec::JobOptions)).
    pub chunk_tilings: Option<usize>,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            min_tilings: 64,
            chunks_per_worker: 3,
            chunk_tilings: None,
        }
    }
}

impl ShardPolicy {
    /// The chunk size (in tilings) this policy yields for a layer with
    /// `count` feasible tilings on a `workers`-worker pool, after
    /// applying an optional per-job override: the job's hint wins, then
    /// the policy's explicit [`ShardPolicy::chunk_tilings`], then the
    /// `chunks_per_worker` derivation. Always at least 1.
    pub fn chunk_size(&self, count: usize, workers: usize, job_hint: Option<usize>) -> usize {
        job_hint
            .or(self.chunk_tilings)
            .unwrap_or_else(|| count.div_ceil(workers.max(1) * self.chunks_per_worker.max(1)))
            .max(1)
    }
}

/// State the pool shares with its workers: the sharding knobs and a
/// re-entrant handle to the task queue for posting help tokens. The
/// handle lives in an `Option` so [`DsePool::drop`] can sever it —
/// workers holding permanent `Sender` clones would keep the channel
/// open and the shutdown join would hang.
struct PoolShared {
    workers: usize,
    /// The live sharding policy — a mutex, not a plain field, so
    /// `set-shard-policy` can retune a running pool. Read once per
    /// layer (never held across exploration work).
    policy: Mutex<ShardPolicy>,
    helper: Mutex<Option<Sender<Task>>>,
}

impl PoolShared {
    fn policy(&self) -> ShardPolicy {
        *lock_recovered(&self.policy)
    }
}

/// One sharded layer exploration in flight: chunked tiling ranges
/// claimed from a shared counter by the leader and any helpers. The
/// leader enumerates the tilings **once**; every chunk sweeps a
/// subrange of that shared enumeration.
struct Shard {
    engine: SharedEngine,
    layer: Layer,
    tilings: Vec<Tiling>,
    chunks: Vec<Range<usize>>,
    next: AtomicUsize,
    progress: Mutex<ShardProgress>,
    done: Condvar,
    /// Per-claimed-chunk sweep durations — the signal `ShardPolicy`
    /// auto-tuning will feed on.
    chunk_ns: Arc<Histogram>,
    /// Leader-side partial-merge duration.
    merge_ns: Arc<Histogram>,
    /// The submitting job's latency budget: checked before computing
    /// each claimed chunk, so a lapsed job stops burning workers
    /// between chunks (an in-progress sweep still runs to completion).
    deadline: Option<Deadline>,
}

struct ShardProgress {
    partials: Vec<Option<Result<LayerPartial, DseError>>>,
    finished: usize,
}

impl Shard {
    fn new(
        engine: SharedEngine,
        layer: Layer,
        tilings: Vec<Tiling>,
        chunks: Vec<Range<usize>>,
        chunk_ns: Arc<Histogram>,
        merge_ns: Arc<Histogram>,
        deadline: Option<Deadline>,
    ) -> Self {
        let progress = ShardProgress {
            partials: (0..chunks.len()).map(|_| None).collect(),
            finished: 0,
        };
        Shard {
            engine,
            layer,
            tilings,
            chunks,
            next: AtomicUsize::new(0),
            progress: Mutex::new(progress),
            done: Condvar::new(),
            chunk_ns,
            merge_ns,
            deadline,
        }
    }

    /// Claim and explore chunks until none remain. Run by the leader
    /// and by every helper; returns immediately when the shard has
    /// already drained. A chunk that panics records an error so the
    /// leader never waits on a chunk nobody will finish.
    fn work(&self) {
        loop {
            // ordering: Relaxed — `next` is a pure claim ticket; the
            // chunk data it indexes is immutable, and result slots are
            // published under the shard's mutex, not through this atomic.
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks.len() {
                return;
            }
            let range = self.chunks[i].clone();
            // Between-chunk deadline check: the claim/publish protocol
            // stays intact (the expired chunk still publishes a
            // partial — an error one — so the leader never waits on a
            // slot nobody will fill).
            if let Some(deadline) = self.deadline.filter(Deadline::expired) {
                let mut progress = lock_recovered(&self.progress);
                progress.partials[i] = Some(Err(deadline.error()));
                progress.finished += 1;
                if progress.finished == self.chunks.len() {
                    self.done.notify_all();
                }
                continue;
            }
            let chunk_span = Span::enter("shard_chunk", &self.chunk_ns);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.engine
                    .explore_tilings_range(&self.layer, &self.tilings, range)
            }))
            .unwrap_or_else(|payload| {
                Err(DseError::new(format!(
                    "worker panicked exploring a tiling range of layer {:?}: {}",
                    self.layer.name,
                    panic_message(payload.as_ref())
                )))
            });
            // Close the chunk span before publishing: contention on the
            // progress lock is not sweep time.
            drop(chunk_span);
            let mut progress = lock_recovered(&self.progress);
            progress.partials[i] = Some(result);
            progress.finished += 1;
            if progress.finished == self.chunks.len() {
                self.done.notify_all();
            }
        }
    }

    /// Leader-side completion: block until every chunk has reported
    /// (each is being actively computed by some worker, so this cannot
    /// deadlock), then merge the partials in range order.
    fn wait_and_merge(&self) -> Result<LayerDseResult, DseError> {
        let mut progress = lock_recovered(&self.progress);
        while progress.finished < self.chunks.len() {
            progress = self.done.wait(progress).unwrap_or_else(|e| e.into_inner());
        }
        let _merge = Span::enter("merge", &self.merge_ns);
        let mut merged: Option<LayerPartial> = None;
        for slot in progress.partials.iter_mut() {
            let partial = slot.take().expect("a finished shard has every partial")?;
            merged = Some(match merged {
                None => partial,
                Some(mut earlier) => {
                    earlier.merge(partial);
                    earlier
                }
            });
        }
        Ok(merged
            .expect("a shard has at least two chunks")
            .into_result(self.layer.name.clone()))
    }
}

/// Explore one layer, sharding its tiling range across the pool when
/// the policy says it is big enough to be worth it. Falls back to the
/// plain sequential sweep for small layers, single-worker pools, and
/// enumerations too short to split.
fn explore_maybe_sharded(
    engine: &SharedEngine,
    layer: &Layer,
    shared: &PoolShared,
    chunk_hint: Option<usize>,
    state: &ServiceState,
    deadline: Option<Deadline>,
) -> Result<LayerDseResult, DseError> {
    if shared.workers <= 1 {
        return engine.explore_layer(layer);
    }
    // One consistent snapshot of the live policy per layer: a
    // concurrent `set-shard-policy` affects the *next* layer, never a
    // half-chunked one.
    let policy = shared.policy();
    // Enumerate once; sharded chunks sweep subranges of this one list,
    // and the unsharded fallback sweeps it whole — either way the
    // candidate domain is walked a single time.
    let acc = *engine.model().traffic_model().accelerator();
    let tilings = enumerate_tilings(layer, &acc)?;
    let count = tilings.len();
    let whole = |engine: &SharedEngine| {
        Ok(engine
            .explore_tilings_range(layer, &tilings, 0..count)?
            .into_result(layer.name.clone()))
    };
    if count < policy.min_tilings.max(2) {
        return whole(engine);
    }
    let chunk = policy.chunk_size(count, shared.workers, chunk_hint);
    let chunks: Vec<Range<usize>> = (0..count)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(count))
        .collect();
    if chunks.len() < 2 {
        return whole(engine);
    }
    let invites = (shared.workers - 1).min(chunks.len() - 1);
    let stages = state.stages();
    let shard = Arc::new(Shard::new(
        Arc::clone(engine),
        layer.clone(),
        tilings,
        chunks,
        Arc::clone(&stages.shard_chunk_ns),
        Arc::clone(&stages.merge_ns),
        deadline,
    ));
    // Invite idle workers. Tokens are requests, not assignments: one
    // arriving after the shard drained is a no-op, and if the queue is
    // already severed (pool shutting down) the leader simply does every
    // chunk itself.
    if let Some(helper) = lock_recovered(&shared.helper).clone() {
        for _ in 0..invites {
            if helper.send(Task::Help(Arc::clone(&shard))).is_err() {
                break;
            }
        }
    }
    shard.work();
    shard.wait_and_merge()
}

/// A multi-threaded DSE job pool over shared [`ServiceState`].
#[derive(Debug)]
pub struct DsePool {
    state: Arc<ServiceState>,
    workers: usize,
    queue: Option<Sender<Task>>,
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Jobs submitted so far — the 1-based ordinal a fault plan's
    /// `panic-job` targets.
    submitted: AtomicU64,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl DsePool {
    /// Spawn `workers` worker threads over the shared state, sharding
    /// oversized layers per the default [`ShardPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(state: Arc<ServiceState>, workers: usize) -> Self {
        Self::with_shard_policy(state, workers, ShardPolicy::default())
    }

    /// Spawn `workers` worker threads with an explicit [`ShardPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_shard_policy(
        state: Arc<ServiceState>,
        workers: usize,
        policy: ShardPolicy,
    ) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let (queue, rx) = channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(PoolShared {
            workers,
            policy: Mutex::new(policy),
            helper: Mutex::new(Some(queue.clone())),
        });
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();
        DsePool {
            state,
            workers,
            queue: Some(queue),
            shared,
            handles,
            submitted: AtomicU64::new(0),
        }
    }

    /// The sharding policy currently in force.
    pub fn shard_policy(&self) -> ShardPolicy {
        self.shared.policy()
    }

    /// Retune the sharding policy on the running pool, effective for
    /// the next layer any worker picks up — in-flight layers finish
    /// under the snapshot they started with. Returns the policy that
    /// was previously in force. This is the `set-shard-policy` admin
    /// verb's backing operation.
    pub fn set_shard_policy(&self, policy: ShardPolicy) -> ShardPolicy {
        std::mem::replace(&mut lock_recovered(&self.shared.policy), policy)
    }

    /// The shared state this pool executes against.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueue a job's layers and return a handle to await the result.
    /// Submission never blocks on exploration work. The job's
    /// [`JobOptions`] travel with every layer task: the cache mode and
    /// shard-chunk hint steer the worker's leader path, and
    /// `keep_points` selects a Pareto-retaining engine (cache-keyed
    /// separately from point-free sweeps).
    pub fn submit(&self, spec: &JobSpec) -> PendingJob {
        self.submit_traced(spec, None)
    }

    /// [`DsePool::submit`] with an optional per-request [`Trace`] (the
    /// TCP front-end creates one per submitted job, keyed by the wire
    /// `id`): every layer task carries it, so worker-side spans land in
    /// the request's stage breakdown as well as the global histograms.
    pub fn submit_traced(&self, spec: &JobSpec, trace: Option<Arc<Trace>>) -> PendingJob {
        self.state.stages().jobs_total.inc();
        // ordering: Relaxed — a pure submission ticket; the fault
        // plan's panic-job match needs uniqueness, not ordering.
        let ordinal = self.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        // An armed plan's chosen job panics in exactly one of its
        // layer tasks (the first): one injected panic per plan, and
        // the job still exercises the full reply path for the rest.
        let inject_panic = self.state.faults().job_panics(ordinal);
        let deadline = Deadline::of(&spec.options);
        let engine = self
            .state
            .factory()
            .engine_with(&spec.engine, spec.options.keep_points)
            .into_shared();
        let tag: Arc<str> = self.state.factory().engine_tag(&spec.engine).into();
        let t_ck_ns = engine.model().table().t_ck_ns;
        let layers = spec.workload.layers();
        let (reply, results) = channel();
        for (index, layer) in layers.iter().enumerate() {
            let task = LayerTask {
                state: Arc::clone(&self.state),
                engine: Arc::clone(&engine),
                tag: Arc::clone(&tag),
                layer: layer.clone(),
                index,
                options: spec.options,
                deadline,
                inject_panic: inject_panic && index == 0,
                trace: trace.clone(),
                reply: reply.clone(),
            };
            // The queue lives as long as the pool and workers never exit
            // while it is open, but if a send fails anyway, reply with an
            // error for this layer instead of panicking the submitter —
            // `wait` then surfaces it as a job failure.
            let queue = self
                .queue
                .as_ref()
                .expect("queue lives as long as the pool");
            if let Err(send_error) = queue.send(Task::Layer(task)) {
                let _ = reply.send((
                    index,
                    Err(DseError::new(
                        "worker pool is shut down; layer not scheduled",
                    )),
                ));
                drop(send_error);
            }
        }
        PendingJob {
            id: spec.id,
            workload: spec.workload.name().to_owned(),
            expected: layers.len(),
            t_ck_ns,
            results,
        }
    }

    /// Submit every job, then await every result: jobs and their layers
    /// execute concurrently across the pool, results come back in
    /// submission order.
    pub fn run_batch(&self, specs: &[JobSpec]) -> Vec<Result<JobResult, ServiceError>> {
        let pending: Vec<PendingJob> = specs.iter().map(|s| self.submit(s)).collect();
        pending.into_iter().map(PendingJob::wait).collect()
    }
}

impl Drop for DsePool {
    fn drop(&mut self) {
        // Sever the workers' helper handle first — otherwise their
        // clones would keep the channel open forever — then close our
        // own sender so every worker's recv loop ends once the queue
        // drains. A leader mid-shard holds a transient clone; it
        // finishes its layer, drops the clone, and exits normally.
        lock_recovered(&self.shared.helper).take();
        self.queue.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Task>>, shared: &PoolShared) {
    loop {
        // Hold the lock only while waiting for the next task; execution
        // happens with the queue free for other workers.
        let task = match lock_recovered(rx).recv() {
            Ok(task) => task,
            Err(_) => return, // pool dropped, queue closed
        };
        let task = match task {
            Task::Layer(task) => task,
            Task::Help(shard) => {
                // Chunk panics are converted inside `work`, and a stale
                // token finds the shard drained and returns at once.
                shard.work();
                continue;
            }
        };
        // Dequeue-time deadline check: a layer that waited out its
        // job's whole budget in the queue is answered (with the typed
        // error) instead of computed — the submitter has given up.
        if let Some(deadline) = task.deadline.filter(Deadline::expired) {
            let _ = task.reply.send((task.index, Err(deadline.error())));
            continue;
        }
        // Catch panics so the reply is *always* sent: a worker that
        // unwound without replying would leave `PendingJob::wait`
        // blocked forever on a layer that no one is computing.
        // (`explore_layer_cached_with` already converts panics inside
        // the exploration itself; this guards everything else — and is
        // exactly the mechanism an injected fault-plan panic probes.)
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if task.inject_panic {
                task.state.stages().fault_pool_total.inc();
                // check:allow(no-unwrap-hot-path): deliberate, counted fault injection
                panic!("injected fault-plan worker panic");
            }
            let range = task.options.tiling_range;
            task.state.explore_layer_cached_traced(
                &task.engine,
                &task.tag,
                &task.layer,
                task.options.cache,
                task.trace.as_ref(),
                range,
                || {
                    if range.is_some() {
                        // A ranged job *is* a shard (the router's
                        // scatter unit); sharding it again would
                        // re-chunk someone else's chunk.
                        crate::engine::explore_layer_ranged(&task.engine, &task.layer, range)
                    } else {
                        explore_maybe_sharded(
                            &task.engine,
                            &task.layer,
                            shared,
                            task.options.shard_chunk,
                            &task.state,
                            task.deadline,
                        )
                    }
                },
            )
        }))
        .unwrap_or_else(|payload| {
            Err(DseError::new(format!(
                "worker panicked exploring layer {:?}: {}",
                task.layer.name,
                panic_message(payload.as_ref())
            )))
        });
        // A dropped PendingJob just discards the reply.
        let _ = task.reply.send((task.index, result));
    }
}

/// A submitted job whose layers are in flight.
#[derive(Debug)]
pub struct PendingJob {
    id: u64,
    workload: String,
    expected: usize,
    t_ck_ns: f64,
    results: Receiver<LayerReply>,
}

impl PendingJob {
    /// Block until every layer finishes and assemble the result in
    /// layer order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed layer failure, or a protocol error if
    /// a worker died mid-job.
    pub fn wait(self) -> Result<JobResult, ServiceError> {
        let mut slots: Vec<Option<Result<(LayerDseResult, CacheOutcome), DseError>>> =
            (0..self.expected).map(|_| None).collect();
        for _ in 0..self.expected {
            let (index, result) = self
                .results
                .recv()
                .map_err(|_| ServiceError::protocol("worker pool shut down mid-job"))?;
            if index >= slots.len() {
                return Err(ServiceError::protocol("worker replied with a bogus index"));
            }
            slots[index] = Some(result);
        }
        let mut total = EdpEstimate::zero(self.t_ck_ns);
        let mut outcomes = Vec::with_capacity(self.expected);
        for slot in slots {
            let (result, outcome) =
                slot.ok_or_else(|| ServiceError::protocol("a layer never received its reply"))??;
            total.accumulate(&result.best.estimate);
            outcomes.push(outcome_from_result(result, outcome));
        }
        Ok(JobResult {
            id: self.id,
            workload: self.workload,
            total,
            layers: outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EngineSpec;
    use drmap_cnn::network::Network;

    #[test]
    fn pool_matches_sequential_path_bit_exactly() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(Arc::clone(&state), 4);
        let spec = JobSpec::network(7, EngineSpec::default(), Network::tiny());
        let pooled = pool.submit(&spec).wait().unwrap();

        let fresh = ServiceState::new().unwrap();
        let sequential = fresh.run_job(&spec).unwrap();
        assert_eq!(pooled.id, 7);
        assert_eq!(pooled.layers.len(), sequential.layers.len());
        assert_eq!(
            pooled.total.energy.to_bits(),
            sequential.total.energy.to_bits()
        );
        assert_eq!(
            pooled.total.cycles.to_bits(),
            sequential.total.cycles.to_bits()
        );
        for (p, s) in pooled.layers.iter().zip(&sequential.layers) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.mapping, s.mapping);
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.tiling, s.tiling);
            assert_eq!(p.estimate.energy.to_bits(), s.estimate.energy.to_bits());
        }
    }

    #[test]
    fn single_layer_jobs_and_errors_propagate() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(state, 2);
        let layer = drmap_cnn::layer::Layer::conv("C", 8, 8, 16, 8, 3, 3, 1);
        let job = JobSpec::layer(3, EngineSpec::default(), layer.clone());
        let result = pool.submit(&job).wait().unwrap();
        assert_eq!(result.layers.len(), 1);
        assert_eq!(result.layers[0].name, "C");

        // A layer whose smallest tile cannot fit the buffers fails.
        let huge = drmap_cnn::layer::Layer::conv("HUGE", 1, 1, 1, 1, 4096, 4096, 1);
        let bad = JobSpec::layer(4, EngineSpec::default(), huge);
        assert!(matches!(
            pool.submit(&bad).wait(),
            Err(ServiceError::Dse(_))
        ));
    }

    #[test]
    fn resubmission_is_served_from_cache() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(Arc::clone(&state), 4);
        let spec = JobSpec::network(1, EngineSpec::default(), Network::tiny());
        // Waiting between submissions guarantees the cache is warm for
        // the resubmission (a concurrent batch may interleave misses).
        let first = pool.submit(&spec).wait().unwrap();
        let second = pool.submit(&spec).wait().unwrap();
        assert_eq!(first.cache_hits(), 0);
        assert_eq!(second.cache_hits(), second.layers.len());
        assert!(state.cache().stats().hits >= second.layers.len() as u64);
        for (a, b) in first.layers.iter().zip(&second.layers) {
            assert_eq!(a.estimate.energy.to_bits(), b.estimate.energy.to_bits());
            assert_eq!(a.tiling, b.tiling);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let state = ServiceState::new().unwrap();
        let _ = DsePool::new(state, 0);
    }

    /// Shard every layer, however small, into 2-per-worker chunks.
    fn always_shard() -> ShardPolicy {
        ShardPolicy {
            min_tilings: 2,
            chunks_per_worker: 2,
            chunk_tilings: None,
        }
    }

    #[test]
    fn forced_sharding_is_bit_identical_to_sequential() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::with_shard_policy(Arc::clone(&state), 4, always_shard());
        let spec = JobSpec::network(11, EngineSpec::default(), Network::tiny());
        let sharded = pool.submit(&spec).wait().unwrap();

        let fresh = ServiceState::new().unwrap();
        let sequential = fresh.run_job(&spec).unwrap();
        assert_eq!(sharded.layers.len(), sequential.layers.len());
        assert_eq!(
            sharded.total.energy.to_bits(),
            sequential.total.energy.to_bits()
        );
        assert_eq!(
            sharded.total.cycles.to_bits(),
            sequential.total.cycles.to_bits()
        );
        for (p, s) in sharded.layers.iter().zip(&sequential.layers) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.mapping, s.mapping);
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.tiling, s.tiling);
            assert_eq!(p.evaluations, s.evaluations);
            assert_eq!(p.estimate.energy.to_bits(), s.estimate.energy.to_bits());
            assert_eq!(p.estimate.cycles.to_bits(), s.estimate.cycles.to_bits());
        }
    }

    #[test]
    fn sharded_single_layer_job_matches_direct_exploration() {
        // One layer on an otherwise idle multi-worker pool: exactly the
        // case intra-layer sharding exists for.
        let state = ServiceState::new().unwrap();
        let pool = DsePool::with_shard_policy(Arc::clone(&state), 4, always_shard());
        let layer = drmap_cnn::layer::Layer::conv("BIG", 13, 13, 64, 32, 3, 3, 1);
        let spec = JobSpec::layer(21, EngineSpec::default(), layer.clone());
        let result = pool.submit(&spec).wait().unwrap();

        let engine = state.factory().engine(&spec.engine);
        assert!(
            engine.tiling_count(&layer).unwrap() >= 2,
            "the layer must actually shard"
        );
        let direct = engine.explore_layer(&layer).unwrap();
        assert_eq!(result.layers.len(), 1);
        assert_eq!(result.layers[0].evaluations as usize, direct.evaluations);
        assert_eq!(result.layers[0].tiling, direct.best.tiling);
        assert_eq!(
            result.layers[0].estimate.energy.to_bits(),
            direct.best.estimate.energy.to_bits()
        );
        assert_eq!(
            result.layers[0].estimate.cycles.to_bits(),
            direct.best.estimate.cycles.to_bits()
        );
    }

    #[test]
    fn chunk_size_prefers_job_hint_then_policy_override_then_derivation() {
        let derived = ShardPolicy::default();
        // 4 workers x 3 chunks/worker over 120 tilings -> chunks of 10.
        assert_eq!(derived.chunk_size(120, 4, None), 10);
        assert_eq!(derived.chunk_size(120, 4, Some(7)), 7, "job hint wins");
        let pinned = ShardPolicy {
            chunk_tilings: Some(25),
            ..ShardPolicy::default()
        };
        assert_eq!(pinned.chunk_size(120, 4, None), 25);
        assert_eq!(pinned.chunk_size(120, 4, Some(7)), 7, "hint beats override");
        // Degenerate inputs still yield a workable chunk.
        assert_eq!(derived.chunk_size(0, 0, None), 1);
    }

    #[test]
    fn live_shard_policy_retune_applies_and_stays_bit_identical() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(Arc::clone(&state), 4);
        let previous = pool.set_shard_policy(always_shard());
        assert_eq!(previous, ShardPolicy::default());
        assert_eq!(pool.shard_policy(), always_shard());

        // A job sharded under the retuned policy still merges exactly.
        let layer = drmap_cnn::layer::Layer::conv("BIG", 13, 13, 64, 32, 3, 3, 1);
        let spec = JobSpec::layer(31, EngineSpec::default(), layer.clone());
        let retuned = pool.submit(&spec).wait().unwrap();
        let direct = state
            .factory()
            .engine(&spec.engine)
            .explore_layer(&layer)
            .unwrap();
        assert_eq!(
            retuned.layers[0].estimate.energy.to_bits(),
            direct.best.estimate.energy.to_bits()
        );
        assert_eq!(retuned.layers[0].evaluations as usize, direct.evaluations);
    }

    #[test]
    fn per_job_chunk_hint_is_bit_identical_to_sequential() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::with_shard_policy(Arc::clone(&state), 4, always_shard());
        let layer = drmap_cnn::layer::Layer::conv("BIG", 13, 13, 64, 32, 3, 3, 1);
        let spec = JobSpec::layer(41, EngineSpec::default(), layer.clone()).with_options(
            crate::spec::JobOptions {
                shard_chunk: Some(3),
                ..Default::default()
            },
        );
        let hinted = pool.submit(&spec).wait().unwrap();
        let direct = state
            .factory()
            .engine(&spec.engine)
            .explore_layer(&layer)
            .unwrap();
        assert_eq!(
            hinted.layers[0].estimate.energy.to_bits(),
            direct.best.estimate.energy.to_bits()
        );
        assert_eq!(hinted.layers[0].evaluations as usize, direct.evaluations);
    }

    #[test]
    fn queued_jobs_past_their_deadline_answer_typed_errors() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(Arc::clone(&state), 1);
        // Occupy the single worker so the deadlined job waits in queue
        // past its (tiny) budget; the dequeue check then answers it
        // without computing anything.
        let blocker = JobSpec::layer(
            1,
            EngineSpec::default(),
            drmap_cnn::layer::Layer::conv("BIG", 13, 13, 64, 32, 3, 3, 1),
        );
        let deadlined = JobSpec::network(2, EngineSpec::default(), Network::tiny()).with_options(
            crate::spec::JobOptions {
                deadline_ms: Some(1),
                ..Default::default()
            },
        );
        let blocking = pool.submit(&blocker);
        let pending = pool.submit(&deadlined);
        assert!(matches!(
            pending.wait(),
            Err(ServiceError::DeadlineExceeded { deadline_ms: 1 })
        ));
        // The blocker itself is unharmed.
        blocking.wait().unwrap();
        // And an undeadlined resubmission completes normally.
        let again = JobSpec::network(3, EngineSpec::default(), Network::tiny());
        assert_eq!(pool.submit(&again).wait().unwrap().layers.len(), 3);
    }

    #[test]
    fn armed_panic_job_surfaces_a_typed_error_and_is_counted() {
        let state = ServiceState::new().unwrap();
        state
            .faults()
            .set_plan(Some(
                crate::faults::FaultPlan::parse("seed=1,panic-job=2").unwrap(),
            ))
            .unwrap();
        let pool = DsePool::new(Arc::clone(&state), 2);
        let spec = JobSpec::network(9, EngineSpec::default(), Network::tiny());
        // Job 1 is not the chosen ordinal.
        pool.submit(&spec).wait().unwrap();
        // Job 2 panics a worker; the reply path converts it to a typed
        // job error instead of hanging the submitter.
        let err = pool.submit(&spec).wait().unwrap_err();
        assert!(err.to_string().contains("injected fault-plan worker panic"));
        assert_eq!(
            state.metrics().snapshot().counter("fault_pool_total"),
            Some(1)
        );
        // The plan fires once: job 3 (same spec, warm cache) succeeds.
        pool.submit(&spec).wait().unwrap();
    }

    #[test]
    fn sharding_failures_propagate_and_single_worker_pools_never_shard() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::with_shard_policy(Arc::clone(&state), 4, always_shard());
        let huge = drmap_cnn::layer::Layer::conv("HUGE", 1, 1, 1, 1, 4096, 4096, 1);
        assert!(matches!(
            pool.submit(&JobSpec::layer(5, EngineSpec::default(), huge))
                .wait(),
            Err(ServiceError::Dse(_))
        ));

        // A single-worker pool takes the sequential path (and still
        // agrees, of course).
        let solo_state = ServiceState::new().unwrap();
        let solo = DsePool::with_shard_policy(Arc::clone(&solo_state), 1, always_shard());
        let spec = JobSpec::network(6, EngineSpec::default(), Network::tiny());
        let a = solo.submit(&spec).wait().unwrap();
        let b = state.run_job(&spec).unwrap();
        assert_eq!(a.total.energy.to_bits(), b.total.energy.to_bits());
    }
}
