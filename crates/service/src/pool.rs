//! The worker-pool execution engine.
//!
//! Layer-wise DSE is embarrassingly parallel: a network job decomposes
//! into independent per-layer explorations. The pool exploits that by
//! sharding every submitted job into layer tasks on one shared queue,
//! so a batch of jobs keeps all workers busy end-to-end — small jobs
//! don't wait for big ones and a single straggler layer cannot idle the
//! rest of the pool (contrast with
//! [`DseEngine::explore_network`](drmap_core::dse::DseEngine::explore_network),
//! which spawns one short-lived thread per layer of one network).
//!
//! Determinism: workers may *compute* layers in any order, but results
//! are reassembled in layer order and totals are accumulated exactly as
//! the direct engine does, so a job's [`JobResult`] is bit-identical to
//! a sequential run — cached, pooled, or direct.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use drmap_cnn::layer::Layer;
use drmap_core::dse::{LayerDseResult, SharedEngine};
use drmap_core::edp::EdpEstimate;
use drmap_core::error::DseError;

use crate::cache::CacheOutcome;
use crate::engine::{outcome_from_result, ServiceState};
use crate::error::{panic_message, ServiceError};
use crate::spec::{JobResult, JobSpec};

type LayerReply = (usize, Result<(LayerDseResult, CacheOutcome), DseError>);

struct LayerTask {
    state: Arc<ServiceState>,
    engine: SharedEngine,
    tag: Arc<str>,
    layer: Layer,
    index: usize,
    reply: Sender<LayerReply>,
}

/// A multi-threaded DSE job pool over shared [`ServiceState`].
#[derive(Debug)]
pub struct DsePool {
    state: Arc<ServiceState>,
    workers: usize,
    queue: Option<Sender<LayerTask>>,
    handles: Vec<JoinHandle<()>>,
}

impl DsePool {
    /// Spawn `workers` worker threads over the shared state.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(state: Arc<ServiceState>, workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let (queue, rx) = channel::<LayerTask>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        DsePool {
            state,
            workers,
            queue: Some(queue),
            handles,
        }
    }

    /// The shared state this pool executes against.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueue a job's layers and return a handle to await the result.
    /// Submission never blocks on exploration work.
    pub fn submit(&self, spec: &JobSpec) -> PendingJob {
        let engine = self.state.factory().engine(&spec.engine).into_shared();
        let tag: Arc<str> = self.state.factory().engine_tag(&spec.engine).into();
        let t_ck_ns = engine.model().table().t_ck_ns;
        let layers = spec.workload.layers();
        let (reply, results) = channel();
        for (index, layer) in layers.iter().enumerate() {
            let task = LayerTask {
                state: Arc::clone(&self.state),
                engine: Arc::clone(&engine),
                tag: Arc::clone(&tag),
                layer: layer.clone(),
                index,
                reply: reply.clone(),
            };
            // The queue lives as long as the pool and workers never exit
            // while it is open, but if a send fails anyway, reply with an
            // error for this layer instead of panicking the submitter —
            // `wait` then surfaces it as a job failure.
            let queue = self
                .queue
                .as_ref()
                .expect("queue lives as long as the pool");
            if let Err(send_error) = queue.send(task) {
                let _ = reply.send((
                    index,
                    Err(DseError::new(
                        "worker pool is shut down; layer not scheduled",
                    )),
                ));
                drop(send_error);
            }
        }
        PendingJob {
            id: spec.id,
            workload: spec.workload.name().to_owned(),
            expected: layers.len(),
            t_ck_ns,
            results,
        }
    }

    /// Submit every job, then await every result: jobs and their layers
    /// execute concurrently across the pool, results come back in
    /// submission order.
    pub fn run_batch(&self, specs: &[JobSpec]) -> Vec<Result<JobResult, ServiceError>> {
        let pending: Vec<PendingJob> = specs.iter().map(|s| self.submit(s)).collect();
        pending.into_iter().map(PendingJob::wait).collect()
    }
}

impl Drop for DsePool {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        self.queue.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<LayerTask>>) {
    loop {
        // Hold the lock only while waiting for the next task; execution
        // happens with the queue free for other workers.
        let task = match crate::sync::lock_recovered(rx).recv() {
            Ok(task) => task,
            Err(_) => return, // pool dropped, queue closed
        };
        // Catch panics so the reply is *always* sent: a worker that
        // unwound without replying would leave `PendingJob::wait`
        // blocked forever on a layer that no one is computing.
        // (`explore_layer_cached` already converts panics inside the
        // exploration itself; this guards everything else.)
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            task.state
                .explore_layer_cached(&task.engine, &task.tag, &task.layer)
        }))
        .unwrap_or_else(|payload| {
            Err(DseError::new(format!(
                "worker panicked exploring layer {:?}: {}",
                task.layer.name,
                panic_message(payload.as_ref())
            )))
        });
        // A dropped PendingJob just discards the reply.
        let _ = task.reply.send((task.index, result));
    }
}

/// A submitted job whose layers are in flight.
#[derive(Debug)]
pub struct PendingJob {
    id: u64,
    workload: String,
    expected: usize,
    t_ck_ns: f64,
    results: Receiver<LayerReply>,
}

impl PendingJob {
    /// Block until every layer finishes and assemble the result in
    /// layer order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed layer failure, or a protocol error if
    /// a worker died mid-job.
    pub fn wait(self) -> Result<JobResult, ServiceError> {
        let mut slots: Vec<Option<Result<(LayerDseResult, CacheOutcome), DseError>>> =
            (0..self.expected).map(|_| None).collect();
        for _ in 0..self.expected {
            let (index, result) = self
                .results
                .recv()
                .map_err(|_| ServiceError::protocol("worker pool shut down mid-job"))?;
            if index >= slots.len() {
                return Err(ServiceError::protocol("worker replied with a bogus index"));
            }
            slots[index] = Some(result);
        }
        let mut total = EdpEstimate::zero(self.t_ck_ns);
        let mut outcomes = Vec::with_capacity(self.expected);
        for slot in slots {
            let (result, outcome) =
                slot.ok_or_else(|| ServiceError::protocol("a layer never received its reply"))??;
            total.accumulate(&result.best.estimate);
            outcomes.push(outcome_from_result(result, outcome));
        }
        Ok(JobResult {
            id: self.id,
            workload: self.workload,
            total,
            layers: outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EngineSpec;
    use drmap_cnn::network::Network;

    #[test]
    fn pool_matches_sequential_path_bit_exactly() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(Arc::clone(&state), 4);
        let spec = JobSpec::network(7, EngineSpec::default(), Network::tiny());
        let pooled = pool.submit(&spec).wait().unwrap();

        let fresh = ServiceState::new().unwrap();
        let sequential = fresh.run_job(&spec).unwrap();
        assert_eq!(pooled.id, 7);
        assert_eq!(pooled.layers.len(), sequential.layers.len());
        assert_eq!(
            pooled.total.energy.to_bits(),
            sequential.total.energy.to_bits()
        );
        assert_eq!(
            pooled.total.cycles.to_bits(),
            sequential.total.cycles.to_bits()
        );
        for (p, s) in pooled.layers.iter().zip(&sequential.layers) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.mapping, s.mapping);
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.tiling, s.tiling);
            assert_eq!(p.estimate.energy.to_bits(), s.estimate.energy.to_bits());
        }
    }

    #[test]
    fn single_layer_jobs_and_errors_propagate() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(state, 2);
        let layer = drmap_cnn::layer::Layer::conv("C", 8, 8, 16, 8, 3, 3, 1);
        let job = JobSpec::layer(3, EngineSpec::default(), layer.clone());
        let result = pool.submit(&job).wait().unwrap();
        assert_eq!(result.layers.len(), 1);
        assert_eq!(result.layers[0].name, "C");

        // A layer whose smallest tile cannot fit the buffers fails.
        let huge = drmap_cnn::layer::Layer::conv("HUGE", 1, 1, 1, 1, 4096, 4096, 1);
        let bad = JobSpec::layer(4, EngineSpec::default(), huge);
        assert!(matches!(
            pool.submit(&bad).wait(),
            Err(ServiceError::Dse(_))
        ));
    }

    #[test]
    fn resubmission_is_served_from_cache() {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(Arc::clone(&state), 4);
        let spec = JobSpec::network(1, EngineSpec::default(), Network::tiny());
        // Waiting between submissions guarantees the cache is warm for
        // the resubmission (a concurrent batch may interleave misses).
        let first = pool.submit(&spec).wait().unwrap();
        let second = pool.submit(&spec).wait().unwrap();
        assert_eq!(first.cache_hits(), 0);
        assert_eq!(second.cache_hits(), second.layers.len());
        assert!(state.cache().stats().hits >= second.layers.len() as u64);
        for (a, b) in first.layers.iter().zip(&second.layers) {
            assert_eq!(a.estimate.energy.to_bits(), b.estimate.energy.to_bits());
            assert_eq!(a.tiling, b.tiling);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let state = ServiceState::new().unwrap();
        let _ = DsePool::new(state, 0);
    }
}
