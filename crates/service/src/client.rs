//! A blocking client for the pipelined TCP protocol.
//!
//! Three usage styles:
//!
//! * **One at a time** — [`Client::submit`], [`Client::ping`],
//!   [`Client::stats`]: send a request, block for its response.
//! * **Pipelined** — [`Client::submit_batch`] (or the lower-level
//!   [`Client::send`]/[`Client::recv`] pair): put many jobs on the wire
//!   without waiting, then collect responses **in completion order**,
//!   matching them back to jobs by `id`. The server executes the whole
//!   window concurrently on its worker pool, so a pipelined batch
//!   finishes in roughly the time of its slowest job rather than the
//!   sum of all of them.
//! * **Typed / admin** — the versioned protocol of [`crate::proto`]:
//!   [`Client::hello`] opens the handshake, [`Client::submit_with`]
//!   attaches per-job options, and [`Client::set_policy`],
//!   [`Client::set_shard_policy`], [`Client::set_bounds`],
//!   [`Client::cache_clear`], [`Client::cache_warm`],
//!   [`Client::compact_store`], [`Client::stats_report`],
//!   [`Client::metrics`], [`Client::metrics_history`],
//!   [`Client::slow_traces`], and [`Client::set_slow_log`] drive a
//!   live server's control plane.
//!
//! [`Client::set_binary`] switches outgoing requests to the
//! length-prefixed binary frame encoding (see [`crate::wire`]), which
//! avoids line-scanning for jobs carrying large inline networks;
//! responses self-describe, so both encodings are always accepted.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use drmap_store::store::CompactReport;
use drmap_telemetry::SnapshotHistory;

use crate::error::ServiceError;
use crate::json::Json;
use crate::loadgen::SplitMix64;
use crate::overload::OverloadConfig;
use crate::pool::ShardPolicy;
use crate::proto::{
    BoundsUpdate, MetricsReport, OverloadUpdate, PersistedSlowTrace, Request, Response,
    ShardPolicyUpdate, StatsReport, PROTOCOL_VERSION,
};
use crate::spec::{JobOptions, JobResult, JobSpec};
use crate::wire::{self, Encoding};

/// Socket-level tunables of a [`Client`] connection. The defaults keep
/// the pre-timeout behavior: block indefinitely on connect, read, and
/// write — explicit timeouts turn silent stalls into the typed
/// [`ServiceError::Timeout`] that [`RetryPolicy`] treats as retryable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (`None`: OS default).
    pub connect_timeout: Option<Duration>,
    /// Bound on each socket read; an expired deadline surfaces as
    /// [`ServiceError::Timeout`] (`None`: block forever).
    pub read_timeout: Option<Duration>,
    /// Bound on each socket write, likewise (`None`: block forever).
    pub write_timeout: Option<Duration>,
}

/// A budget-capped exponential backoff with **decorrelated jitter**:
/// each sleep is drawn uniformly from `[base_ms, 3 × previous_sleep]`
/// and clamped to `cap_ms`, so synchronized clients spread out instead
/// of retrying in lockstep. The draw is seeded and deterministic —
/// the same policy replays the same schedule, which keeps chaos tests
/// reproducible.
///
/// Only [retryable](ServiceError::is_retryable) failures (socket
/// timeouts, shed load, transport errors) are retried, and only for
/// **idempotent** requests — job submissions are safe because results
/// are deterministic and memoized server-side. A shed response's
/// `retry_after_ms` hint is honored as a floor under the jittered
/// sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Smallest sleep, and the lower bound of every jitter draw.
    pub base_ms: u64,
    /// Largest sleep; every draw is clamped here.
    pub cap_ms: u64,
    /// Total attempt budget, counting the first try. `1` disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 50,
            cap_ms: 2_000,
            max_attempts: 4,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The next sleep in milliseconds: uniform in
    /// `[base_ms, 3 × prev_ms]`, clamped to `cap_ms`. Updates `prev_ms`
    /// to the drawn value (the decorrelated-jitter recurrence).
    pub fn next_backoff_ms(&self, rng: &mut SplitMix64, prev_ms: &mut u64) -> u64 {
        let ceiling = prev_ms.saturating_mul(3).max(self.base_ms);
        let span = ceiling - self.base_ms;
        let drawn = if span == 0 {
            self.base_ms
        } else {
            self.base_ms + rng.next_u64() % (span + 1)
        };
        *prev_ms = drawn.min(self.cap_ms);
        *prev_ms
    }
}

/// What a server said hello back with.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloInfo {
    /// Protocol version the server speaks.
    pub version: u64,
    /// Server identification string.
    pub server: String,
    /// Capability labels (see [`crate::proto::capabilities`]).
    pub capabilities: Vec<String>,
}

impl HelloInfo {
    /// Whether the server advertised a capability.
    pub fn has(&self, capability: &str) -> bool {
        self.capabilities.iter().any(|c| c == capability)
    }
}

/// Cache/pool statistics as reported by a server's `stats` command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Cache lookups served from a resident entry.
    pub hits: u64,
    /// Cache lookups that required computation.
    pub misses: u64,
    /// Cache lookups coalesced onto an in-flight computation.
    pub coalesced: u64,
    /// Entries evicted to satisfy the cache capacity bounds.
    pub evictions: u64,
    /// Distinct cached layer results.
    pub entries: usize,
    /// Approximate bytes resident in the cache.
    pub bytes: usize,
    /// Fraction of lookups served without a fresh computation.
    pub hit_rate: f64,
    /// Worker threads in the server's pool.
    pub workers: usize,
    /// Cache misses served from the persistent store tier (0 when the
    /// server has none attached).
    pub store_hits: u64,
    /// Cache misses the persistent store also missed.
    pub store_misses: u64,
    /// Summed exploration durations the server's cache has recorded
    /// (fresh computations plus store revivals), in nanoseconds.
    pub compute_ns_total: u64,
}

/// A connected client. Supports both blocking request/response and
/// pipelined submission; see the module docs.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    encoding: Encoding,
    /// Remembered for [`Client::reconnect`] after a retryable
    /// transport failure mid-conversation.
    peer: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// Connect to a running [`JobServer`](crate::server::JobServer)
    /// with default (blocking, no-timeout) socket settings.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit socket timeouts. Reads and writes that
    /// exceed their bound fail with the typed
    /// [`ServiceError::Timeout`] instead of blocking forever on a
    /// stalled or fault-injected server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (every resolved address is
    /// tried; the last failure wins).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ServiceError> {
        let mut last_err: Option<std::io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            let connected = match config.connect_timeout {
                Some(bound) => TcpStream::connect_timeout(&candidate, bound),
                None => TcpStream::connect(candidate),
            };
            match connected {
                Ok(stream) => return Self::from_stream(stream, candidate, config),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .map(ServiceError::Io)
            .unwrap_or_else(|| ServiceError::protocol("address resolved to nothing")))
    }

    fn from_stream(
        stream: TcpStream,
        peer: SocketAddr,
        config: ClientConfig,
    ) -> Result<Self, ServiceError> {
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            encoding: Encoding::Text,
            peer,
            config,
        })
    }

    /// Tear down and re-establish the connection (same peer, same
    /// config, same encoding). Used between retry attempts after a
    /// transport failure: a timed-out stream may hold a half-read
    /// frame, so resynchronizing means starting over.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn reconnect(&mut self) -> Result<(), ServiceError> {
        let connected = match self.config.connect_timeout {
            Some(bound) => TcpStream::connect_timeout(&self.peer, bound),
            None => TcpStream::connect(self.peer),
        }?;
        let encoding = self.encoding;
        *self = Self::from_stream(connected, self.peer, self.config)?;
        self.encoding = encoding;
        Ok(())
    }

    /// Send subsequent requests as length-prefixed binary frames
    /// (`true`) or newline-delimited text (`false`, the default).
    /// Incoming responses self-describe and are always accepted in
    /// either encoding.
    pub fn set_binary(&mut self, binary: bool) {
        self.encoding = if binary {
            Encoding::Binary
        } else {
            Encoding::Text
        };
    }

    /// Write one request to the wire (in the current encoding) without
    /// waiting for any response — the pipelining primitive.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send(&mut self, payload: &Json) -> Result<(), ServiceError> {
        wire::write_message(&mut self.writer, &payload.render(), self.encoding)
    }

    /// Read the next response from the wire, whichever request it
    /// answers.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, unparsable responses, or a closed server.
    pub fn recv(&mut self) -> Result<Json, ServiceError> {
        match wire::read_message(&mut self.reader)? {
            Some((payload, _)) => Ok(Json::parse(&payload)?),
            None => Err(ServiceError::protocol("server closed the connection")),
        }
    }

    /// Send one request and read one response (no pipelining).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, unparsable responses, or a closed server.
    pub fn request(&mut self, payload: &Json) -> Result<Json, ServiceError> {
        self.send(payload)?;
        self.recv()
    }

    /// Check that a response has `"ok": true`, surfacing its error.
    fn expect_ok(response: Json) -> Result<Json, ServiceError> {
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("server reported failure without an error message");
            Err(ServiceError::protocol(message))
        }
    }

    /// Extract the `result` payload of a job response.
    fn job_result(response: Json) -> Result<JobResult, ServiceError> {
        let response = Self::expect_ok(response)?;
        let result = response
            .get("result")
            .ok_or_else(|| ServiceError::protocol("response missing \"result\""))?;
        JobResult::from_json(result)
    }

    /// Submit a job and wait for its result. Sends the *legacy* bare
    /// job form (no `"type"`), exercising the compatibility shim on
    /// every call; [`Client::submit_with`] speaks the typed protocol.
    ///
    /// # Errors
    ///
    /// Surfaces server-side job failures as protocol errors.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobResult, ServiceError> {
        Self::job_result(self.request(&spec.to_json())?)
    }

    // -----------------------------------------------------------------
    // Typed protocol
    // -----------------------------------------------------------------

    /// Send one typed request and decode its typed response, surfacing
    /// server-side failures as `Err` — generic error responses as
    /// [`ServiceError::Protocol`], shed load and missed deadlines as
    /// their typed variants so callers (and [`RetryPolicy`]) can react
    /// without string-matching.
    /// Public so layered tiers (`drmap-router`'s admin fan-out) can
    /// send verbs this client has no dedicated wrapper for.
    pub fn typed_request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        wire::write_request(&mut self.writer, request, self.encoding)?;
        match wire::read_response(&mut self.reader)? {
            Some((Response::Error { message, .. }, _)) => Err(ServiceError::protocol(message)),
            Some((Response::Overloaded { retry_after_ms, .. }, _)) => {
                Err(ServiceError::Overloaded { retry_after_ms })
            }
            Some((Response::DeadlineExceeded { deadline_ms, .. }, _)) => {
                Err(ServiceError::DeadlineExceeded { deadline_ms })
            }
            Some((response, _)) => Ok(response),
            None => Err(ServiceError::protocol("server closed the connection")),
        }
    }

    fn unexpected(verb: &str, response: &Response) -> ServiceError {
        ServiceError::protocol(format!("{verb} got an unexpected response: {response:?}"))
    }

    /// Open the versioned-protocol handshake: advertise
    /// [`PROTOCOL_VERSION`] and this crate's identity, and return the
    /// server's version and capability list.
    ///
    /// # Errors
    ///
    /// Fails if the server rejects the version (the connection remains
    /// usable) or answers malformed.
    pub fn hello(&mut self) -> Result<HelloInfo, ServiceError> {
        let request = Request::Hello {
            version: PROTOCOL_VERSION,
            client: Some(concat!("drmap-service/", env!("CARGO_PKG_VERSION")).to_owned()),
        };
        match self.typed_request(&request)? {
            Response::Hello {
                version,
                server,
                capabilities,
            } => Ok(HelloInfo {
                version,
                server,
                capabilities,
            }),
            other => Err(Self::unexpected("hello", &other)),
        }
    }

    /// Submit a job with explicit per-job options (cache mode,
    /// Pareto-point retention, shard-chunk hint) over the typed
    /// protocol, and wait for its result.
    ///
    /// # Errors
    ///
    /// Surfaces server-side job failures as protocol errors.
    pub fn submit_with(
        &mut self,
        spec: &JobSpec,
        options: JobOptions,
    ) -> Result<JobResult, ServiceError> {
        let spec = spec.clone().with_options(options);
        match self.typed_request(&Request::Submit(spec))? {
            Response::Job { result } => Ok(result),
            other => Err(Self::unexpected("submit", &other)),
        }
    }

    /// [`Client::submit_with`] wrapped in a [`RetryPolicy`]: retryable
    /// failures (socket timeouts, transport errors, shed load) back
    /// off with decorrelated jitter and try again until the attempt
    /// budget runs out; a shed response's `retry_after_ms` is honored
    /// as a floor under the jittered sleep. Transport failures
    /// reconnect before retrying (a timed-out stream may hold a
    /// half-read frame). Retrying a submission is safe — results are
    /// deterministic and memoized server-side, so a duplicate attempt
    /// answers from the cache.
    ///
    /// # Errors
    ///
    /// The final attempt's error when the budget runs out;
    /// non-retryable failures (protocol, exploration, missed
    /// deadlines) immediately.
    pub fn submit_retry(
        &mut self,
        spec: &JobSpec,
        options: JobOptions,
        policy: &RetryPolicy,
    ) -> Result<JobResult, ServiceError> {
        let mut rng = SplitMix64::new(policy.seed);
        let mut prev_ms = policy.base_ms;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self.submit_with(spec, options);
            let err = match outcome {
                Ok(result) => return Ok(result),
                Err(e) => e,
            };
            // The attempt budget bounds this retry loop.
            if !err.is_retryable() || attempt >= policy.max_attempts.max(1) {
                return Err(err);
            }
            let backoff = policy.next_backoff_ms(&mut rng, &mut prev_ms);
            let sleep_ms = match &err {
                ServiceError::Overloaded { retry_after_ms } => backoff.max(*retry_after_ms),
                _ => backoff,
            };
            std::thread::sleep(Duration::from_millis(sleep_ms));
            // A stalled or broken stream cannot be trusted to be
            // frame-aligned anymore; start over on a fresh socket.
            if matches!(err, ServiceError::Timeout(_) | ServiceError::Io(_)) {
                self.reconnect()?;
            }
        }
    }

    /// Arm (or, with `None`, disarm) a deterministic fault plan on the
    /// live server — see [`FaultPlan::parse`](crate::faults::FaultPlan::parse)
    /// for the spec grammar. Returns the canonical rendering of the
    /// plan now armed, `None` when disarmed.
    ///
    /// # Errors
    ///
    /// Fails on malformed specs, on servers without fault injection
    /// compiled in (no `faults` capability), or malformed responses.
    pub fn set_faults(&mut self, spec: Option<&str>) -> Result<Option<String>, ServiceError> {
        match self.typed_request(&Request::SetFaults {
            id: None,
            spec: spec.map(str::to_owned),
        })? {
            Response::FaultsSet { spec, .. } => Ok(spec),
            other => Err(Self::unexpected("set-faults", &other)),
        }
    }

    /// Retune the live server's overload controller (absent fields
    /// keep their current values; `max_inflight: Some(0)` clears the
    /// cap). Returns `(now_in_force, previous)`.
    ///
    /// # Errors
    ///
    /// Fails on empty updates (rejected client-side), malformed
    /// responses, or server-side errors.
    pub fn set_overload(
        &mut self,
        update: OverloadUpdate,
    ) -> Result<(OverloadConfig, OverloadConfig), ServiceError> {
        if update.is_empty() {
            return Err(ServiceError::protocol(
                "set-overload needs at least one field to change",
            ));
        }
        match self.typed_request(&Request::SetOverload { id: None, update })? {
            Response::OverloadSet {
                config, previous, ..
            } => Ok((config, previous)),
            other => Err(Self::unexpected("set-overload", &other)),
        }
    }

    /// Swap the live server's cache eviction policy. Returns the policy
    /// that was previously in force.
    ///
    /// # Errors
    ///
    /// Fails on malformed responses or server-side errors.
    pub fn set_policy(
        &mut self,
        policy: crate::cache::EvictionPolicy,
    ) -> Result<crate::cache::EvictionPolicy, ServiceError> {
        match self.typed_request(&Request::SetPolicy { id: None, policy })? {
            Response::PolicySet { previous, .. } => Ok(previous),
            other => Err(Self::unexpected("set-policy", &other)),
        }
    }

    /// Retune the running pool's shard policy (absent fields keep their
    /// current values). Returns the full policy now in force.
    ///
    /// # Errors
    ///
    /// Fails on malformed responses or server-side errors.
    pub fn set_shard_policy(
        &mut self,
        update: ShardPolicyUpdate,
    ) -> Result<ShardPolicy, ServiceError> {
        match self.typed_request(&Request::SetShardPolicy { id: None, update })? {
            Response::ShardPolicySet { policy, .. } => Ok(policy),
            other => Err(Self::unexpected("set-shard-policy", &other)),
        }
    }

    /// Drop every resident cache entry on the server (the persistent
    /// store tier is untouched).
    ///
    /// # Errors
    ///
    /// Fails on malformed responses or server-side errors.
    pub fn cache_clear(&mut self) -> Result<(), ServiceError> {
        match self.typed_request(&Request::CacheClear { id: None })? {
            Response::CacheCleared { .. } => Ok(()),
            other => Err(Self::unexpected("cache-clear", &other)),
        }
    }

    /// Promote up to `limit` stored results into the server's resident
    /// cache tier; returns how many were loaded.
    ///
    /// # Errors
    ///
    /// Fails if the server has no store attached, or on malformed
    /// responses.
    pub fn cache_warm(&mut self, limit: Option<usize>) -> Result<usize, ServiceError> {
        match self.typed_request(&Request::CacheWarm { id: None, limit })? {
            Response::CacheWarmed { loaded, .. } => Ok(loaded),
            other => Err(Self::unexpected("cache-warm", &other)),
        }
    }

    /// Compact the server's persistent result store, returning what the
    /// rewrite accomplished.
    ///
    /// # Errors
    ///
    /// Fails if the server has no store attached, or on malformed
    /// responses.
    pub fn compact_store(&mut self) -> Result<CompactReport, ServiceError> {
        self.compact_store_with(None)
    }

    /// [`Client::compact_store`] with an optional auto-compaction
    /// threshold: `Some(ratio)` arms the server's background
    /// dead-bytes check (0 disarms) instead of forcing an immediate
    /// rewrite — see [`Request::StoreCompact`].
    ///
    /// # Errors
    ///
    /// Fails if the server has no store attached, or on malformed
    /// responses.
    pub fn compact_store_with(
        &mut self,
        auto_ratio: Option<f64>,
    ) -> Result<CompactReport, ServiceError> {
        match self.typed_request(&Request::StoreCompact {
            id: None,
            auto_ratio,
        })? {
            Response::StoreCompacted { report, .. } => Ok(report),
            other => Err(Self::unexpected("store-compact", &other)),
        }
    }

    /// Fetch the typed stats report: every counter plus the **active
    /// configuration** (live eviction policy, cache bounds, shard
    /// policy). The legacy [`Client::stats`] carries counters only.
    ///
    /// # Errors
    ///
    /// Fails on malformed responses.
    pub fn stats_report(&mut self) -> Result<StatsReport, ServiceError> {
        match self.typed_request(&Request::Stats { id: None })? {
            Response::Stats { report, .. } => Ok(report),
            other => Err(Self::unexpected("stats", &other)),
        }
    }

    /// Retune the live server's cache bounds (absent fields keep their
    /// current values; `0` clears a bound to unbounded). Returns the
    /// bounds now in force plus how many entries were evicted
    /// immediately to honor a shrunk cap.
    ///
    /// # Errors
    ///
    /// Fails on empty updates (rejected client-side), malformed
    /// responses, or server-side errors.
    pub fn set_bounds(
        &mut self,
        update: BoundsUpdate,
    ) -> Result<(Option<usize>, Option<usize>, u64), ServiceError> {
        if update.is_empty() {
            return Err(ServiceError::protocol(
                "set-bounds needs at least one of max_entries or max_bytes",
            ));
        }
        match self.typed_request(&Request::SetBounds { id: None, update })? {
            Response::BoundsSet {
                max_entries,
                max_bytes,
                evicted,
                ..
            } => Ok((max_entries, max_bytes, evicted)),
            other => Err(Self::unexpected("set-bounds", &other)),
        }
    }

    /// Fetch the server's telemetry: every counter, gauge, and latency
    /// histogram, plus the slow-request log. Render the snapshot as
    /// Prometheus-style text with
    /// [`drmap_telemetry::MetricsSnapshot::to_prometheus`].
    ///
    /// # Errors
    ///
    /// Fails on malformed responses.
    pub fn metrics(&mut self) -> Result<MetricsReport, ServiceError> {
        match self.typed_request(&Request::Metrics { id: None })? {
            Response::Metrics { report, .. } => Ok(report),
            other => Err(Self::unexpected("metrics", &other)),
        }
    }

    /// Fetch the server's windowed metrics history: the base snapshot,
    /// every retained windowed delta, and the cumulative snapshot the
    /// samples reconstruct to (see
    /// [`drmap_telemetry::SnapshotHistory::reconstructed`]). Empty
    /// until the server's sampler has ticked (`--sample-secs`).
    ///
    /// # Errors
    ///
    /// Fails on malformed responses.
    pub fn metrics_history(&mut self) -> Result<SnapshotHistory, ServiceError> {
        match self.typed_request(&Request::MetricsHistory { id: None })? {
            Response::MetricsHistory { history, .. } => Ok(history),
            other => Err(Self::unexpected("metrics-history", &other)),
        }
    }

    /// List up to `limit` slow-request traces persisted through the
    /// server's store tier, newest first — post-mortems that survive
    /// restarts, unlike the in-memory ring the `metrics` verb dumps.
    ///
    /// # Errors
    ///
    /// Fails if the server has no store attached, or on malformed
    /// responses.
    pub fn slow_traces(
        &mut self,
        limit: Option<usize>,
    ) -> Result<Vec<PersistedSlowTrace>, ServiceError> {
        match self.typed_request(&Request::SlowTraces { id: None, limit })? {
            Response::SlowTraces { traces, .. } => Ok(traces),
            other => Err(Self::unexpected("slow-traces", &other)),
        }
    }

    /// Retune the live server's slow-request log: the threshold in
    /// milliseconds (`0` logs every job) and/or the ring capacity
    /// (clamped to at least 1; shrinking evicts the oldest entries).
    /// Returns the `(slow_ms, cap)` now in force, `slow_ms == None`
    /// meaning the log is disabled.
    ///
    /// # Errors
    ///
    /// Fails on empty updates (rejected client-side), malformed
    /// responses, or server-side errors.
    pub fn set_slow_log(
        &mut self,
        slow_ms: Option<u64>,
        cap: Option<usize>,
    ) -> Result<(Option<u64>, usize), ServiceError> {
        if slow_ms.is_none() && cap.is_none() {
            return Err(ServiceError::protocol(
                "set-slow-log needs at least one of slow_ms or cap",
            ));
        }
        match self.typed_request(&Request::SetSlowLog {
            id: None,
            slow_ms,
            cap,
        })? {
            Response::SlowLogSet { slow_ms, cap, .. } => Ok((slow_ms, cap)),
            other => Err(Self::unexpected("set-slow-log", &other)),
        }
    }

    /// How many jobs this client keeps on the wire at once in
    /// [`Client::submit_batch`]. Deliberately below the server's
    /// per-connection in-flight cap (128): the server releases a slot
    /// only once a response is *written*, so a client that sent more
    /// than the cap without reading could fill both sockets' buffers
    /// and deadlock — sender blocked on a full socket, server blocked
    /// waiting for the client to read.
    pub const PIPELINE_WINDOW: usize = 64;

    /// Submit jobs without waiting for responses — up to
    /// [`Client::PIPELINE_WINDOW`] on the wire at a time — collecting
    /// responses as they complete (possibly out of submission order)
    /// and returning them matched back into `specs` order. Per-job
    /// failures occupy their job's slot without aborting the rest of
    /// the batch.
    ///
    /// A full window is in flight at once, so a batch takes roughly as
    /// long as its slowest window rather than the sum of its jobs.
    ///
    /// # Errors
    ///
    /// Fails wholesale on I/O errors, duplicate job ids (the
    /// correlation key must be unique within a pipelined batch), or
    /// responses that match no submitted id.
    pub fn submit_batch(
        &mut self,
        specs: &[JobSpec],
    ) -> Result<Vec<Result<JobResult, ServiceError>>, ServiceError> {
        let mut slot_of: HashMap<u64, usize> = HashMap::with_capacity(specs.len());
        for (slot, spec) in specs.iter().enumerate() {
            if slot_of.insert(spec.id, slot).is_some() {
                return Err(ServiceError::protocol(format!(
                    "duplicate job id {} in pipelined batch",
                    spec.id
                )));
            }
        }
        let mut results: Vec<Option<Result<JobResult, ServiceError>>> =
            (0..specs.len()).map(|_| None).collect();
        let mut sent = 0;
        let mut received = 0;
        while received < specs.len() {
            while sent < specs.len() && sent - received < Self::PIPELINE_WINDOW {
                self.send(&specs[sent].to_json())?;
                sent += 1;
            }
            let response = self.recv()?;
            let id = response
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::protocol("pipelined response carries no job id"))?;
            let slot = *slot_of
                .get(&id)
                .ok_or_else(|| ServiceError::protocol(format!("unexpected response id {id}")))?;
            if results[slot].is_some() {
                return Err(ServiceError::protocol(format!(
                    "duplicate response for job id {id}"
                )));
            }
            results[slot] = Some(Self::job_result(response));
            received += 1;
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot filled exactly once"))
            .collect())
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable or answers incorrectly.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        let response = Self::expect_ok(self.request(&Json::obj([("cmd", Json::str("ping"))]))?)?;
        match response.get("pong").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err(ServiceError::protocol("ping got no pong")),
        }
    }

    /// Fetch the server's cache/pool statistics.
    ///
    /// # Errors
    ///
    /// Fails on malformed responses.
    pub fn stats(&mut self) -> Result<ServerStats, ServiceError> {
        let response = Self::expect_ok(self.request(&Json::obj([("cmd", Json::str("stats"))]))?)?;
        let stats = response
            .get("stats")
            .ok_or_else(|| ServiceError::protocol("response missing \"stats\""))?;
        let int = |name: &str| {
            stats
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::protocol(format!("stats missing {name:?}")))
        };
        Ok(ServerStats {
            hits: int("hits")?,
            misses: int("misses")?,
            coalesced: int("coalesced")?,
            evictions: int("evictions")?,
            entries: int("entries")? as usize,
            bytes: int("bytes")? as usize,
            hit_rate: stats.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0),
            workers: int("workers")? as usize,
            // Absent on servers predating the persistent tier.
            store_hits: stats.get("store_hits").and_then(Json::as_u64).unwrap_or(0),
            store_misses: stats
                .get("store_misses")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            compute_ns_total: stats
                .get("compute_ns_total")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        })
    }

    /// Ask the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// Fails if the server rejects the command.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        Self::expect_ok(self.request(&Json::obj([("cmd", Json::str("shutdown"))]))?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(policy: &RetryPolicy, seed: u64, draws: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut prev = policy.base_ms;
        (0..draws)
            .map(|_| policy.next_backoff_ms(&mut rng, &mut prev))
            .collect()
    }

    #[test]
    fn decorrelated_jitter_stays_within_bounds_and_replays_by_seed() {
        let policy = RetryPolicy::default();
        let mut rng = SplitMix64::new(policy.seed);
        let mut prev = policy.base_ms;
        let mut sleeps = Vec::new();
        for _ in 0..256 {
            let before = prev;
            let sleep = policy.next_backoff_ms(&mut rng, &mut prev);
            assert!(sleep >= policy.base_ms, "below base: {sleep}");
            assert!(sleep <= policy.cap_ms, "above cap: {sleep}");
            assert!(
                sleep <= before.saturating_mul(3).max(policy.base_ms),
                "exceeded the decorrelated ceiling: {sleep} after {before}"
            );
            assert_eq!(sleep, prev, "the recurrence feeds the drawn value back");
            sleeps.push(sleep);
        }
        // Same seed → byte-identical schedule; different seeds → two
        // clients do not retry in lockstep.
        assert_eq!(sleeps, schedule(&policy, policy.seed, 256));
        assert_ne!(sleeps, schedule(&policy, policy.seed + 1, 256));
        // Degenerate policy: base == cap pins every sleep.
        let flat = RetryPolicy {
            base_ms: 100,
            cap_ms: 100,
            ..policy
        };
        assert!(schedule(&flat, 3, 32).iter().all(|&ms| ms == 100));
    }
}
