//! A small blocking client for the NDJSON-over-TCP protocol.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ServiceError;
use crate::json::Json;
use crate::spec::{JobResult, JobSpec};

/// Cache/pool statistics as reported by a server's `stats` command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Cache lookups served from memory.
    pub hits: u64,
    /// Cache lookups that required computation.
    pub misses: u64,
    /// Distinct cached layer results.
    pub entries: usize,
    /// `hits / (hits + misses)`, 0 before any lookup.
    pub hit_rate: f64,
    /// Worker threads in the server's pool.
    pub workers: usize,
}

/// A connected client; one request/response exchange at a time.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running [`JobServer`](crate::server::JobServer).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request line and read one response line.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, unparsable responses, or a closed server.
    pub fn request(&mut self, payload: &Json) -> Result<Json, ServiceError> {
        self.writer.write_all(payload.render().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServiceError::protocol("server closed the connection"));
        }
        Ok(Json::parse(line.trim_end())?)
    }

    /// Check that a response has `"ok": true`, surfacing its error.
    fn expect_ok(response: Json) -> Result<Json, ServiceError> {
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("server reported failure without an error message");
            Err(ServiceError::protocol(message))
        }
    }

    /// Submit a job and wait for its result.
    ///
    /// # Errors
    ///
    /// Surfaces server-side job failures as protocol errors.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobResult, ServiceError> {
        let response = Self::expect_ok(self.request(&spec.to_json())?)?;
        let result = response
            .get("result")
            .ok_or_else(|| ServiceError::protocol("response missing \"result\""))?;
        JobResult::from_json(result)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable or answers incorrectly.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        let response = Self::expect_ok(self.request(&Json::obj([("cmd", Json::str("ping"))]))?)?;
        match response.get("pong").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err(ServiceError::protocol("ping got no pong")),
        }
    }

    /// Fetch the server's cache/pool statistics.
    ///
    /// # Errors
    ///
    /// Fails on malformed responses.
    pub fn stats(&mut self) -> Result<ServerStats, ServiceError> {
        let response = Self::expect_ok(self.request(&Json::obj([("cmd", Json::str("stats"))]))?)?;
        let stats = response
            .get("stats")
            .ok_or_else(|| ServiceError::protocol("response missing \"stats\""))?;
        let int = |name: &str| {
            stats
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::protocol(format!("stats missing {name:?}")))
        };
        Ok(ServerStats {
            hits: int("hits")?,
            misses: int("misses")?,
            entries: int("entries")? as usize,
            hit_rate: stats.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0),
            workers: int("workers")? as usize,
        })
    }

    /// Ask the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// Fails if the server rejects the command.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        Self::expect_ok(self.request(&Json::obj([("cmd", Json::str("shutdown"))]))?)?;
        Ok(())
    }
}
