//! Adaptive overload control: hysteretic load shedding.
//!
//! The controller watches the **windowed** p99 of `request_ns` (each
//! sampler tick closes one window via
//! [`HistogramWindow`](drmap_telemetry::HistogramWindow)) plus the
//! live in-flight job gauge. When the windowed p99 crosses the high
//! watermark — or the in-flight count exceeds its cap — new job
//! submissions are refused with a typed `overloaded` response carrying
//! `retry_after_ms`, instead of queueing behind work the server cannot
//! finish promptly. Admin verbs keep working while jobs shed, so an
//! operator can always reach a drowning server.
//!
//! Recovery is **hysteretic**: shedding ends only after
//! [`OverloadConfig::recover_windows`] *consecutive* windows whose p99
//! sits at or below the low watermark. A single good window between
//! two bad ones resets the streak, so the controller cannot flap
//! admit/shed/admit across the threshold. The gap between the
//! watermarks is the flap margin; [`OverloadConfig::sanitized`]
//! enforces `low <= high`.
//!
//! The controller ships disabled. `drmap-serve --overload` arms it at
//! boot and the `set-overload` admin verb retunes every knob live; the
//! shed count is exposed as `drmap_shed_total`. See
//! `docs/RELIABILITY.md`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::sync::lock_recovered;

/// The overload controller's knobs. All latencies are windowed p99s in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Master switch; disabled controllers admit everything.
    pub enabled: bool,
    /// Enter shedding when a window's p99 reaches this.
    pub high_ms: u64,
    /// A window only counts toward recovery when its p99 is at or
    /// below this (must not exceed `high_ms` — the gap is the
    /// hysteresis margin).
    pub low_ms: u64,
    /// Consecutive healthy windows required before re-admitting.
    pub recover_windows: u32,
    /// Backoff advice carried in shed responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Also shed while this many jobs are already in flight,
    /// regardless of latency. `None` leaves admission purely
    /// latency-driven.
    pub max_inflight: Option<u64>,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            high_ms: 1_000,
            low_ms: 500,
            recover_windows: 3,
            retry_after_ms: 1_000,
            max_inflight: None,
        }
    }
}

impl OverloadConfig {
    /// This configuration with its invariants enforced: `low_ms`
    /// clamped to `high_ms` and `recover_windows` to at least 1.
    pub fn sanitized(mut self) -> Self {
        self.low_ms = self.low_ms.min(self.high_ms);
        self.recover_windows = self.recover_windows.max(1);
        self
    }
}

#[derive(Debug)]
struct ControllerInner {
    config: OverloadConfig,
    shedding: bool,
    healthy_streak: u32,
}

/// The live admission controller. One per [`ServiceState`]
/// (crate::engine::ServiceState); the server consults
/// [`OverloadController::admission`] before dispatching each job and
/// the sampler thread drives [`OverloadController::observe_window`]
/// once per metrics window.
#[derive(Debug)]
pub struct OverloadController {
    inner: Mutex<ControllerInner>,
    /// Mirror of `inner.shedding` for lock-free reads in `stats`-style
    /// paths; admission itself takes the lock (once per job, far off
    /// any per-byte path).
    shedding: AtomicBool,
}

impl Default for OverloadController {
    fn default() -> Self {
        Self::new(OverloadConfig::default())
    }
}

impl OverloadController {
    /// A controller with the given initial configuration.
    pub fn new(config: OverloadConfig) -> Self {
        OverloadController {
            inner: Mutex::new(ControllerInner {
                config: config.sanitized(),
                shedding: false,
                healthy_streak: 0,
            }),
            shedding: AtomicBool::new(false),
        }
    }

    /// The configuration currently in force.
    pub fn config(&self) -> OverloadConfig {
        lock_recovered(&self.inner).config
    }

    /// Replace the configuration (sanitized), returning the previous
    /// one. Disabling also ends any in-progress shedding immediately.
    pub fn set_config(&self, config: OverloadConfig) -> OverloadConfig {
        let mut inner = lock_recovered(&self.inner);
        let previous = std::mem::replace(&mut inner.config, config.sanitized());
        if !inner.config.enabled {
            inner.shedding = false;
            inner.healthy_streak = 0;
            // ordering: Relaxed — advisory mirror; the lock orders the
            // authoritative state.
            self.shedding.store(false, Ordering::Relaxed);
        }
        previous
    }

    /// Whether the controller is currently shedding load.
    pub fn is_shedding(&self) -> bool {
        // ordering: Relaxed — a momentarily stale answer only shifts
        // one admission decision by one window.
        self.shedding.load(Ordering::Relaxed)
    }

    /// Admission check for one job, given the current in-flight count:
    /// `None` admits, `Some(retry_after_ms)` sheds.
    pub fn admission(&self, inflight: u64) -> Option<u64> {
        let inner = lock_recovered(&self.inner);
        if !inner.config.enabled {
            return None;
        }
        let over_inflight = inner.config.max_inflight.is_some_and(|cap| inflight >= cap);
        if inner.shedding || over_inflight {
            Some(inner.config.retry_after_ms)
        } else {
            None
        }
    }

    /// Feed one closed latency window (its p99 in milliseconds). Drives
    /// the hysteresis: a p99 at or above `high_ms` starts shedding, and
    /// only `recover_windows` consecutive windows at or below `low_ms`
    /// end it. Windows between the watermarks hold the current state
    /// and reset the recovery streak. Returns whether the controller
    /// sheds after this window.
    pub fn observe_window(&self, p99_ms: u64) -> bool {
        let mut inner = lock_recovered(&self.inner);
        if !inner.config.enabled {
            inner.shedding = false;
            inner.healthy_streak = 0;
        } else if p99_ms >= inner.config.high_ms {
            inner.shedding = true;
            inner.healthy_streak = 0;
        } else if inner.shedding {
            if p99_ms <= inner.config.low_ms {
                inner.healthy_streak += 1;
                if inner.healthy_streak >= inner.config.recover_windows {
                    inner.shedding = false;
                    inner.healthy_streak = 0;
                }
            } else {
                inner.healthy_streak = 0;
            }
        }
        let shedding = inner.shedding;
        drop(inner);
        // ordering: Relaxed — advisory mirror, see `is_shedding`.
        self.shedding.store(shedding, Ordering::Relaxed);
        shedding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> OverloadConfig {
        OverloadConfig {
            enabled: true,
            high_ms: 100,
            low_ms: 50,
            recover_windows: 2,
            retry_after_ms: 250,
            max_inflight: None,
        }
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let c = OverloadController::default();
        assert_eq!(c.admission(u64::MAX), None);
        assert!(!c.observe_window(u64::MAX));
        assert!(!c.is_shedding());
    }

    #[test]
    fn sheds_above_high_and_recovers_after_consecutive_healthy_windows() {
        let c = OverloadController::new(enabled());
        assert_eq!(c.admission(0), None);
        assert!(c.observe_window(150), "p99 over high starts shedding");
        assert_eq!(c.admission(0), Some(250));
        // One healthy window is not enough (recover_windows = 2) …
        assert!(c.observe_window(10));
        // … two consecutive ones are.
        assert!(!c.observe_window(10));
        assert_eq!(c.admission(0), None);
    }

    #[test]
    fn hysteresis_does_not_flap_under_step_load() {
        // A step load whose p99 oscillates across the *high* watermark
        // but never reaches the low one: the controller enters shedding
        // once and stays there — no admit/shed flapping.
        let c = OverloadController::new(enabled());
        let mut transitions = 0;
        let mut last = c.is_shedding();
        for step in 0..40 {
            let p99 = if step % 2 == 0 { 120 } else { 80 };
            let now = c.observe_window(p99);
            if now != last {
                transitions += 1;
                last = now;
            }
        }
        assert_eq!(transitions, 1, "entered shedding once and held");
        assert!(c.is_shedding());
        // A window between the watermarks also resets a partial
        // recovery streak: good, mid, good must not recover.
        assert!(c.observe_window(10));
        assert!(c.observe_window(80));
        assert!(c.observe_window(10));
        assert!(c.is_shedding(), "streak reset by the mid window");
        assert!(!c.observe_window(10), "second consecutive healthy window");
    }

    #[test]
    fn inflight_cap_sheds_without_latency_signal() {
        let c = OverloadController::new(OverloadConfig {
            max_inflight: Some(4),
            ..enabled()
        });
        assert_eq!(c.admission(3), None);
        assert_eq!(c.admission(4), Some(250));
        assert_eq!(c.admission(400), Some(250));
        // The cap is instantaneous, not latched: pressure off, admit.
        assert_eq!(c.admission(1), None);
    }

    #[test]
    fn reconfiguring_live_applies_and_disabling_stops_shedding() {
        let c = OverloadController::new(enabled());
        assert!(c.observe_window(500));
        let previous = c.set_config(OverloadConfig {
            enabled: false,
            ..enabled()
        });
        assert_eq!(previous, enabled());
        assert!(!c.is_shedding(), "disabling ends shedding at once");
        assert_eq!(c.admission(0), None);
        // Sanitization: low is clamped to high, recover_windows to 1.
        let weird = c.set_config(OverloadConfig {
            high_ms: 10,
            low_ms: 99,
            recover_windows: 0,
            ..enabled()
        });
        assert!(!weird.enabled);
        let now = c.config();
        assert_eq!(now.low_ms, 10);
        assert_eq!(now.recover_windows, 1);
    }
}
