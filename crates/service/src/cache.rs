//! The shared per-layer memoization cache: a bounded, single-flight LRU.
//!
//! Keys come from [`drmap_core::dse::layer_cache_key`]: a canonical
//! string over the layer *shape*, accelerator configuration, sweep
//! configuration, and the profiled substrate. Because the key ignores
//! layer names, repeated shapes hit the cache whether they recur within
//! one network (VGG-16's duplicated conv blocks), across jobs, or on
//! resubmission of a whole batch. Values are full
//! [`LayerDseResult`]s, cloned out on hit, so a cached answer is
//! bit-identical to the original computation.
//!
//! Four properties make the cache safe for long-running service use:
//!
//! * **Bounded.** [`CacheConfig`] caps the entry count and/or the
//!   approximate resident bytes; when a bound is exceeded the
//!   [`EvictionPolicy`] picks the victim — least-recently-used by
//!   default, or cheapest-to-recompute first under
//!   [`EvictionPolicy::Cost`] — and every eviction is counted in
//!   [`CacheStats::evictions`]. An unbounded cache (the default) never
//!   evicts.
//! * **Single-flight.** [`DseCache::get_or_compute`] coalesces
//!   concurrent lookups of the same key: one caller (the *leader*)
//!   computes while the rest block on its result instead of missing and
//!   recomputing. Coalesced lookups are counted separately from plain
//!   hits.
//! * **Tiered.** A cache built with [`DseCache::with_store`] backs the
//!   resident LRU tier with a persistent [`Store`]: a leader that
//!   misses memory consults the store before computing (a *store hit*
//!   repopulates the LRU without any exploration), and every fresh
//!   computation writes through, so results survive process restarts.
//!   Store failures degrade to recomputation — they are counted, never
//!   propagated.
//! * **Panic-safe.** A leader whose computation panics wakes every
//!   waiter with an error instead of leaving them blocked forever, and
//!   a panic while any lock is held never cascades: poisoned mutexes
//!   are recovered (the guarded state is a memo cache plus counters,
//!   which every code path leaves structurally valid).
//!
//! Entries additionally remember how long their original exploration
//! took ([`CacheStats`] exposes min/max/total over every recorded
//! measurement), persisted alongside each result — the signal
//! [`EvictionPolicy::Cost`] uses to keep expensive results resident.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use drmap_core::bytes::{decode_stored_result, encode_stored_result};
use drmap_core::dse::LayerDseResult;
use drmap_core::error::DseError;
use drmap_store::store::Store;
use drmap_telemetry::Histogram;

use crate::error::panic_message;
use crate::spec::CacheMode;
use crate::sync::lock_recovered;

/// Nanoseconds since `start`, saturating.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Which resident entry a full cache sacrifices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used entry (the default).
    #[default]
    Lru,
    /// Evict the entry that was *cheapest to compute* first (by the
    /// exploration duration each entry carries; ties and unmeasured
    /// entries fall back to least-recently-used). Keeps the results
    /// that would hurt most to recompute resident, at the price of an
    /// O(entries) victim scan per eviction.
    Cost,
}

impl EvictionPolicy {
    /// Stable textual label (used by the `--cache-policy` CLI flag).
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Cost => "cost",
        }
    }

    /// Parse a [`EvictionPolicy::label`] string.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "lru" => Some(EvictionPolicy::Lru),
            "cost" => Some(EvictionPolicy::Cost),
            _ => None,
        }
    }
}

/// Capacity bounds for a [`DseCache`]. `None` means unbounded.
///
/// `policy` is only the *initial* eviction policy: a live cache can be
/// retuned at runtime via [`DseCache::set_policy`] (the `set-policy`
/// admin verb); [`DseCache::policy`] reports the one currently in
/// force.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of resident entries.
    pub max_entries: Option<usize>,
    /// Maximum approximate resident bytes (keys + values).
    pub max_bytes: Option<usize>,
    /// Which entry to sacrifice when a bound is exceeded.
    pub policy: EvictionPolicy,
}

impl CacheConfig {
    /// An unbounded cache (the default).
    pub fn unbounded() -> Self {
        CacheConfig::default()
    }

    /// Bound the entry count.
    pub fn with_max_entries(mut self, n: usize) -> Self {
        self.max_entries = Some(n);
        self
    }

    /// Bound the approximate resident bytes.
    pub fn with_max_bytes(mut self, n: usize) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Choose the eviction policy.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// How a [`DseCache::get_or_compute`] lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a resident entry.
    Hit,
    /// Served by blocking on another caller's in-flight computation.
    Coalesced,
    /// Served from the persistent store tier (no exploration ran; the
    /// result was also promoted into the resident tier).
    StoreHit,
    /// This caller computed the value (and populated the cache).
    Miss,
}

/// Counters and current size, captured in one consistent snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that fell through the resident tier. Store hits are a
    /// subset: `store_hits <= misses`.
    pub misses: u64,
    /// Lookups answered by waiting on an in-flight computation.
    pub coalesced: u64,
    /// Lookups that skipped the cache entirely ([`CacheMode::Bypass`]):
    /// computed fresh, stored nothing, counted in no other bucket.
    pub bypasses: u64,
    /// Lookups that skipped the read path but kept the write path
    /// ([`CacheMode::Refresh`]): computed fresh and replaced the cached
    /// entry. A subset of `misses`.
    pub refreshes: u64,
    /// Entries evicted to satisfy the capacity bounds.
    pub evictions: u64,
    /// Evictions whose victim was chosen by the cost-aware policy
    /// (cheapest recorded exploration first) rather than pure recency.
    /// A subset of `evictions`; always 0 under [`EvictionPolicy::Lru`].
    pub cost_evictions: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
    /// Approximate bytes currently resident (keys + values).
    pub bytes: usize,
    /// Resident-tier misses served from the persistent store (no
    /// exploration ran).
    pub store_hits: u64,
    /// Resident-tier misses the persistent store also missed.
    pub store_misses: u64,
    /// Store reads/writes that failed or produced undecodable bytes
    /// (each degraded to recomputation, never an error).
    pub store_errors: u64,
    /// Shortest exploration duration recorded since the cache was
    /// created or cleared (fresh computations and store-revived
    /// measurements), in nanoseconds; 0 before the first measurement.
    pub compute_ns_min: u64,
    /// Longest recorded exploration duration, in nanoseconds.
    pub compute_ns_max: u64,
    /// Sum of all recorded exploration durations, in nanoseconds —
    /// the compute time this cache's contents represent.
    pub compute_ns_total: u64,
}

impl CacheStats {
    /// Fraction of lookups served without a fresh computation
    /// (0 when no lookups yet). Coalesced and store-served lookups
    /// count as served.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced + self.store_hits) as f64 / total as f64
        }
    }
}

/// Sentinel index for "no node" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One resident entry: the value plus its LRU-list links and the
/// duration of the exploration that originally produced it.
#[derive(Debug)]
struct Entry {
    key: String,
    value: LayerDseResult,
    bytes: usize,
    /// Nanoseconds the original exploration took (0 = never measured,
    /// e.g. direct [`DseCache::insert`]). Survives store round trips.
    compute_ns: u64,
    prev: usize,
    next: usize,
}

/// A slab slot: occupied by an entry or a link in the free list.
#[derive(Debug)]
enum Slot {
    Occupied(Entry),
    Free { next_free: usize },
}

/// The state a leader publishes to its waiters.
#[derive(Debug)]
struct Flight {
    done: Mutex<Option<Result<LayerDseResult, DseError>>>,
    cv: Condvar,
}

/// Everything guarded by the cache's one mutex. Keeping the counters
/// here (not in separate atomics) makes [`DseCache::stats`] a single
/// consistent snapshot: it can never report, say, resident entries with
/// zero recorded misses.
#[derive(Debug, Default)]
struct Inner {
    /// key → slab index of the resident entry.
    map: HashMap<String, usize>,
    /// Entry storage; freed slots are chained into a free list.
    slab: Vec<Slot>,
    /// Most-recently-used entry (head of the intrusive list).
    head: usize,
    /// Least-recently-used entry (tail of the intrusive list).
    tail: usize,
    /// Head of the slab free list.
    free: usize,
    /// Approximate resident bytes.
    bytes: usize,
    /// key → in-flight computation for single-flight coalescing.
    inflight: HashMap<String, Arc<Flight>>,
    /// The eviction policy currently in force (initialized from
    /// [`CacheConfig::policy`], swappable at runtime via
    /// [`DseCache::set_policy`]).
    policy: EvictionPolicy,
    /// The entry cap currently in force (initialized from
    /// [`CacheConfig::max_entries`], retunable at runtime via
    /// [`DseCache::set_bounds`]).
    max_entries: Option<usize>,
    /// The approximate-byte cap currently in force (initialized from
    /// [`CacheConfig::max_bytes`], retunable at runtime via
    /// [`DseCache::set_bounds`]).
    max_bytes: Option<usize>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    bypasses: u64,
    refreshes: u64,
    evictions: u64,
    cost_evictions: u64,
    store_hits: u64,
    store_misses: u64,
    store_errors: u64,
    compute_ns_min: u64,
    compute_ns_max: u64,
    compute_ns_total: u64,
}

impl Inner {
    fn new(config: &CacheConfig) -> Self {
        Inner {
            head: NIL,
            tail: NIL,
            free: NIL,
            policy: config.policy,
            max_entries: config.max_entries,
            max_bytes: config.max_bytes,
            ..Inner::default()
        }
    }

    fn entry(&self, index: usize) -> &Entry {
        match &self.slab[index] {
            Slot::Occupied(e) => e,
            Slot::Free { .. } => unreachable!("LRU list points at a free slot"),
        }
    }

    fn entry_mut(&mut self, index: usize) -> &mut Entry {
        match &mut self.slab[index] {
            Slot::Occupied(e) => e,
            Slot::Free { .. } => unreachable!("LRU list points at a free slot"),
        }
    }

    /// Detach `index` from the LRU list (it must be linked).
    fn unlink(&mut self, index: usize) {
        let (prev, next) = {
            let e = self.entry(index);
            (e.prev, e.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.entry_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entry_mut(next).prev = prev;
        }
    }

    /// Link `index` at the head (most recently used).
    fn push_front(&mut self, index: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(index);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    /// Move an already-resident entry to the head.
    fn touch(&mut self, index: usize) {
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
    }

    /// Remove the entry at `index` entirely, returning its slot to the
    /// free list and its bytes to the budget.
    fn remove(&mut self, index: usize) {
        self.unlink(index);
        let free = self.free;
        let slot = std::mem::replace(&mut self.slab[index], Slot::Free { next_free: free });
        self.free = index;
        match slot {
            Slot::Occupied(e) => {
                self.bytes -= e.bytes;
                self.map.remove(&e.key);
            }
            Slot::Free { .. } => unreachable!("removed a free slot"),
        }
    }

    /// Store `value` under `key` as the most-recently-used entry, then
    /// evict least-recently-used entries until the bounds hold. If the
    /// new entry alone exceeds the byte bound it is evicted too — the
    /// cache never exceeds its configured limits.
    fn insert(&mut self, key: String, value: LayerDseResult, compute_ns: u64) {
        // A nonzero duration is a measurement (fresh computation or
        // store revival): fold it into the monotonic aggregates. Kept
        // O(1) here so `stats()` never has to walk the slab under the
        // cache's one mutex.
        if compute_ns > 0 {
            self.compute_ns_total += compute_ns;
            self.compute_ns_max = self.compute_ns_max.max(compute_ns);
            self.compute_ns_min = if self.compute_ns_min == 0 {
                compute_ns
            } else {
                self.compute_ns_min.min(compute_ns)
            };
        }
        if let Some(&index) = self.map.get(&key) {
            let bytes = approx_entry_bytes(&key, &value);
            let e = self.entry_mut(index);
            let old_bytes = e.bytes;
            e.value = value;
            e.bytes = bytes;
            if compute_ns > 0 {
                e.compute_ns = compute_ns;
            }
            self.bytes = self.bytes - old_bytes + bytes;
            self.touch(index);
        } else {
            let bytes = approx_entry_bytes(&key, &value);
            let entry = Entry {
                key: key.clone(),
                value,
                bytes,
                compute_ns,
                prev: NIL,
                next: NIL,
            };
            let index = if self.free != NIL {
                let index = self.free;
                match self.slab[index] {
                    Slot::Free { next_free } => self.free = next_free,
                    Slot::Occupied(_) => unreachable!("free list points at an occupied slot"),
                }
                self.slab[index] = Slot::Occupied(entry);
                index
            } else {
                self.slab.push(Slot::Occupied(entry));
                self.slab.len() - 1
            };
            self.map.insert(key, index);
            self.bytes += bytes;
            self.push_front(index);
        }
        self.enforce_bounds();
    }

    fn over_bounds(&self) -> bool {
        self.max_entries.is_some_and(|n| self.map.len() > n)
            || self.max_bytes.is_some_and(|n| self.bytes > n)
    }

    /// The victim under the cost-aware policy: the entry with the
    /// smallest recorded exploration duration (unmeasured entries count
    /// as free), ties broken toward the least recently used. Walks the
    /// intrusive list tail-to-head so the tie-break falls out of the
    /// strict `<`.
    fn cost_victim(&self) -> usize {
        let mut victim = self.tail;
        let mut victim_cost = self.entry(victim).compute_ns;
        let mut cursor = self.entry(victim).prev;
        while cursor != NIL {
            let e = self.entry(cursor);
            if e.compute_ns < victim_cost {
                victim = cursor;
                victim_cost = e.compute_ns;
            }
            cursor = e.prev;
        }
        victim
    }

    /// Evict until the **live** bounds hold — the construction-time
    /// config is consulted only at [`Inner::new`]; `set-bounds` retunes
    /// the copies kept here.
    fn enforce_bounds(&mut self) {
        while self.over_bounds() && self.tail != NIL {
            // The *live* policy, not the construction-time one: an
            // operator's `set-policy` takes effect on the very next
            // eviction.
            let victim = match self.policy {
                EvictionPolicy::Lru => self.tail,
                EvictionPolicy::Cost => {
                    self.cost_evictions += 1;
                    self.cost_victim()
                }
            };
            self.remove(victim);
            self.evictions += 1;
        }
    }
}

/// Latency histograms the cache records into once
/// [`DseCache::attach_metrics`] is called: store-tier read/write
/// durations (as the cache sees them, decode/encode included) and time
/// spent blocked on another caller's in-flight computation.
#[derive(Debug)]
pub struct CacheMetrics {
    /// Store-tier consultation on a resident miss (`store.get` +
    /// decode), nanoseconds.
    pub store_read_ns: Arc<Histogram>,
    /// Write-through of a fresh result (encode + `store.put`),
    /// nanoseconds.
    pub store_write_ns: Arc<Histogram>,
    /// Time a caller spent blocked on an in-flight computation it
    /// coalesced onto (or that a refresh waited out), nanoseconds.
    pub singleflight_wait_ns: Arc<Histogram>,
}

/// A thread-safe, capacity-bounded, single-flight memoization cache for
/// single-layer DSE results, optionally backed by a persistent store
/// tier.
#[derive(Debug, Default)]
pub struct DseCache {
    inner: Mutex<Inner>,
    config: CacheConfig,
    store: Option<Arc<Store>>,
    metrics: OnceLock<CacheMetrics>,
}

impl DseCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_config(CacheConfig::unbounded())
    }

    /// An empty cache with the given capacity bounds.
    pub fn with_config(config: CacheConfig) -> Self {
        DseCache {
            inner: Mutex::new(Inner::new(&config)),
            config,
            store: None,
            metrics: OnceLock::new(),
        }
    }

    /// An empty cache with the given bounds over a persistent store
    /// tier: resident-tier misses consult `store` before computing, and
    /// fresh computations write through. The resident tier stays empty
    /// until lookups (or [`DseCache::warm_from_store`]) promote stored
    /// results.
    pub fn with_store(config: CacheConfig, store: Arc<Store>) -> Self {
        DseCache {
            inner: Mutex::new(Inner::new(&config)),
            config,
            store: Some(store),
            metrics: OnceLock::new(),
        }
    }

    /// Attach latency histograms. Until this is called the cache runs
    /// unobserved at zero cost; a second attachment is ignored.
    pub fn attach_metrics(&self, metrics: CacheMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// The capacity bounds the cache was *constructed* with (and its
    /// initial policy). Runtime retunes are visible through
    /// [`DseCache::bounds`] and [`DseCache::policy`] instead.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The `(max_entries, max_bytes)` bounds currently in force.
    pub fn bounds(&self) -> (Option<usize>, Option<usize>) {
        let inner = lock_recovered(&self.inner);
        (inner.max_entries, inner.max_bytes)
    }

    /// Retune the live capacity bounds, effective immediately: if the
    /// resident set exceeds a shrunk cap, entries are evicted (under
    /// the live eviction policy) until the new bounds hold — no
    /// restart, no flush of what still fits. For each bound, `None`
    /// keeps the current value, `Some(None)` removes the cap, and
    /// `Some(Some(n))` sets it. Returns the previous
    /// `(max_entries, max_bytes)` and how many entries the shrink
    /// evicted. This is the `set-bounds` admin verb's backing
    /// operation.
    pub fn set_bounds(
        &self,
        max_entries: Option<Option<usize>>,
        max_bytes: Option<Option<usize>>,
    ) -> ((Option<usize>, Option<usize>), u64) {
        let mut inner = lock_recovered(&self.inner);
        let previous = (inner.max_entries, inner.max_bytes);
        if let Some(entries) = max_entries {
            inner.max_entries = entries;
        }
        if let Some(bytes) = max_bytes {
            inner.max_bytes = bytes;
        }
        let evictions_before = inner.evictions;
        inner.enforce_bounds();
        (previous, inner.evictions - evictions_before)
    }

    /// The eviction policy currently in force.
    pub fn policy(&self) -> EvictionPolicy {
        lock_recovered(&self.inner).policy
    }

    /// Swap the eviction policy on the live cache, effective on the
    /// next eviction — no restart, no flush; resident entries and every
    /// counter survive. Returns the policy that was previously in
    /// force. This is the `set-policy` admin verb's backing operation.
    pub fn set_policy(&self, policy: EvictionPolicy) -> EvictionPolicy {
        std::mem::replace(&mut lock_recovered(&self.inner).policy, policy)
    }

    /// The persistent store tier, if one is attached.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Look up a key, counting the outcome and refreshing its recency.
    /// The stored result's `layer_name` is whatever layer populated the
    /// entry first; callers overwrite it with the requesting layer's
    /// name.
    pub fn get(&self, key: &str) -> Option<LayerDseResult> {
        let mut inner = lock_recovered(&self.inner);
        match inner.map.get(key).copied() {
            Some(index) => {
                inner.hits += 1;
                inner.touch(index);
                Some(inner.entry(index).value.clone())
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Store a result, evicting least-recently-used entries as needed
    /// to keep the cache within its bounds. Concurrent computations of
    /// the same key may both insert; they computed identical values, so
    /// last-write-wins is deterministic. Entries inserted this way carry
    /// no compute-duration measurement.
    pub fn insert(&self, key: String, result: LayerDseResult) {
        lock_recovered(&self.inner).insert(key, result, 0);
    }

    /// Block (without the cache lock) until a flight's leader publishes
    /// a result or an error, and return a copy of it. The time spent
    /// blocked is recorded in the `singleflight_wait_ns` histogram when
    /// metrics are attached.
    fn await_flight(&self, flight: &Flight) -> Result<LayerDseResult, DseError> {
        let start = Instant::now();
        let mut done = lock_recovered(&flight.done);
        while done.is_none() {
            done = flight.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(metrics) = self.metrics.get() {
            metrics.singleflight_wait_ns.record(elapsed_ns(start));
        }
        done.clone().expect("loop exits only when done is set")
    }

    /// Look up `key`; on a miss, compute it exactly once across all
    /// concurrent callers. The first caller to miss (the leader) first
    /// consults the persistent store tier (when attached): a store hit
    /// is decoded, promoted into the resident tier, and shared with
    /// waiters without any exploration. Otherwise the leader runs
    /// `compute` with no cache lock held — timing it, so the entry
    /// carries its exploration cost — and writes the result through to
    /// the store; callers that arrive while the computation is in
    /// flight block until it finishes and share its result (or its
    /// error). A leader that *panics* wakes every waiter with an error
    /// — waiters never hang — and the panic is converted into a
    /// [`DseError`] for the leader's caller as well, so a single
    /// poisoned computation cannot take down a worker thread.
    ///
    /// Errors are not cached: the next lookup after a failure computes
    /// afresh. Store failures (I/O, corruption, undecodable bytes) are
    /// counted in [`CacheStats::store_errors`] and degrade to
    /// recomputation — persistence can never make a lookup fail.
    ///
    /// # Errors
    ///
    /// Propagates `compute` failures (to the leader and every waiter
    /// coalesced onto it).
    pub fn get_or_compute<F>(
        &self,
        key: &str,
        compute: F,
    ) -> Result<(LayerDseResult, CacheOutcome), DseError>
    where
        F: FnOnce() -> Result<LayerDseResult, DseError>,
    {
        self.get_or_compute_with(key, CacheMode::Default, compute)
    }

    /// [`DseCache::get_or_compute`] with an explicit [`CacheMode`] —
    /// the per-job cache-option hook:
    ///
    /// * [`CacheMode::Default`] — the documented lookup above.
    /// * [`CacheMode::Bypass`] — run `compute` directly: no resident or
    ///   store lookup, no insertion, no write-through, no single-flight
    ///   registration (a bypassing caller must not block Default
    ///   callers, nor serve them a result the cache never saw). Counted
    ///   only in [`CacheStats::bypasses`].
    /// * [`CacheMode::Refresh`] — skip the read path (resident entry
    ///   and store tier are ignored) but keep the write path: the fresh
    ///   result replaces the resident entry and is written through.
    ///   A refresh **always performs its own computation**: if another
    ///   computation of the same key is already in flight, the refresh
    ///   waits for it to finish and then recomputes anyway (the
    ///   in-flight one may be serving the very stale result the refresh
    ///   exists to replace). Until the refresh lands, Default lookups
    ///   that still find the old resident entry are served it — refresh
    ///   replaces, it does not invalidate-in-advance; Default lookups
    ///   that *miss* the resident tier coalesce onto the refreshed
    ///   computation. Counted in [`CacheStats::refreshes`] (and
    ///   `misses`).
    ///
    /// # Errors
    ///
    /// Propagates `compute` failures (to the leader and every waiter
    /// coalesced onto it).
    pub fn get_or_compute_with<F>(
        &self,
        key: &str,
        mode: CacheMode,
        compute: F,
    ) -> Result<(LayerDseResult, CacheOutcome), DseError>
    where
        F: FnOnce() -> Result<LayerDseResult, DseError>,
    {
        if mode == CacheMode::Bypass {
            lock_recovered(&self.inner).bypasses += 1;
            let result = match std::panic::catch_unwind(AssertUnwindSafe(compute)) {
                Ok(result) => result,
                Err(payload) => Err(DseError::new(format!(
                    "layer exploration panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            return result.map(|value| (value, CacheOutcome::Miss));
        }
        let (flight, is_leader) = loop {
            let existing = {
                let mut inner = lock_recovered(&self.inner);
                if mode == CacheMode::Default {
                    if let Some(index) = inner.map.get(key).copied() {
                        inner.hits += 1;
                        inner.touch(index);
                        return Ok((inner.entry(index).value.clone(), CacheOutcome::Hit));
                    }
                }
                match inner.inflight.get(key).map(Arc::clone) {
                    Some(flight) if mode != CacheMode::Refresh => {
                        inner.coalesced += 1;
                        break (flight, false);
                    }
                    Some(flight) => Some(flight),
                    None => {
                        inner.misses += 1;
                        if mode == CacheMode::Refresh {
                            inner.refreshes += 1;
                        }
                        let flight = Arc::new(Flight {
                            done: Mutex::new(None),
                            cv: Condvar::new(),
                        });
                        inner.inflight.insert(key.to_owned(), Arc::clone(&flight));
                        break (flight, true);
                    }
                }
            };
            // Refresh found a computation already in flight. Coalescing
            // onto it would silently serve whatever that leader produces
            // — possibly the very stale store-served value this refresh
            // exists to replace. Wait it out (result discarded, errors
            // included) and retry for leadership of a fresh computation.
            if let Some(flight) = existing {
                let _ = self.await_flight(&flight);
            }
        };

        if !is_leader {
            return self
                .await_flight(&flight)
                .map(|value| (value, CacheOutcome::Coalesced));
        }

        // Leader: consult the store tier, then compute if needed — all
        // with no cache lock held. A panic is converted into an error
        // so waiters are woken and the calling worker survives.
        let mut outcome = CacheOutcome::Miss;
        let compute_ns;
        let computed = 'produce: {
            // A refresh exists to *replace* what the tiers hold, so
            // only a Default-mode leader may be served from the store.
            if let (CacheMode::Default, Some(store)) = (mode, &self.store) {
                let read_start = Instant::now();
                let fetched = store.get(key);
                let decoded = match &fetched {
                    Ok(Some(bytes)) => Some(decode_stored_result(bytes)),
                    _ => None,
                };
                if let Some(metrics) = self.metrics.get() {
                    metrics.store_read_ns.record(elapsed_ns(read_start));
                }
                match (fetched, decoded) {
                    (Ok(Some(_)), Some(Ok((value, stored_ns)))) => {
                        lock_recovered(&self.inner).store_hits += 1;
                        outcome = CacheOutcome::StoreHit;
                        compute_ns = stored_ns;
                        break 'produce Ok(value);
                    }
                    (Ok(Some(_)), _) => lock_recovered(&self.inner).store_errors += 1,
                    (Ok(None), _) => lock_recovered(&self.inner).store_misses += 1,
                    (Err(_), _) => lock_recovered(&self.inner).store_errors += 1,
                }
            }
            let started = Instant::now();
            let result = match std::panic::catch_unwind(AssertUnwindSafe(compute)) {
                Ok(result) => result,
                Err(payload) => Err(DseError::new(format!(
                    "layer exploration panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            compute_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            result
        };
        {
            let mut inner = lock_recovered(&self.inner);
            if let Ok(value) = &computed {
                inner.insert(key.to_owned(), value.clone(), compute_ns);
            }
            inner.inflight.remove(key);
        }
        // Publish to waiters after the cache is updated: a thread that
        // misses the in-flight entry now finds the resident one.
        let mut done = lock_recovered(&flight.done);
        *done = Some(computed.clone());
        drop(done);
        flight.cv.notify_all();
        // Write freshly computed results through to the store, after
        // waiters are already unblocked (persistence is off the
        // latency path). Failures degrade to "compute again next
        // restart".
        if outcome == CacheOutcome::Miss {
            if let (Some(store), Ok(value)) = (&self.store, &computed) {
                let write_start = Instant::now();
                let wrote = encode_stored_result(value, compute_ns)
                    .map_err(|_| ())
                    .and_then(|bytes| store.put(key, &bytes).map_err(|_| ()));
                if let Some(metrics) = self.metrics.get() {
                    metrics.store_write_ns.record(elapsed_ns(write_start));
                }
                if wrote.is_err() {
                    lock_recovered(&self.inner).store_errors += 1;
                }
            }
        }
        computed.map(|value| (value, outcome))
    }

    /// Current counters and size, captured atomically under one lock.
    /// The compute-duration aggregates cover every measurement recorded
    /// since creation/clear — fresh explorations plus durations revived
    /// from the store — independent of what is still resident.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_recovered(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            bypasses: inner.bypasses,
            refreshes: inner.refreshes,
            evictions: inner.evictions,
            cost_evictions: inner.cost_evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            store_hits: inner.store_hits,
            store_misses: inner.store_misses,
            store_errors: inner.store_errors,
            compute_ns_min: inner.compute_ns_min,
            compute_ns_max: inner.compute_ns_max,
            compute_ns_total: inner.compute_ns_total,
        }
    }

    /// Promote up to `limit` of the store tier's most recently written
    /// results into the resident tier (all of them when `limit` is
    /// `None` and the cache is unbounded; a bounded cache never warms
    /// past its entry cap). Returns how many entries were loaded.
    /// Without an attached store this is a no-op. Lookup counters are
    /// untouched — warming is not traffic.
    ///
    /// The hot set arrives via one offset-ordered sweep of the log
    /// ([`Store::bulk_load`]) rather than a locked, positioned read per
    /// key. A value damaged on disk is skipped (the rest of the hot set
    /// still warms) and counted in [`CacheStats::store_errors`], so
    /// corruption stays visible at warm-start time; an I/O failure
    /// counts one store error and warms nothing.
    pub fn warm_from_store(&self, limit: Option<usize>) -> usize {
        let Some(store) = &self.store else { return 0 };
        // The *live* entry bound, so a warm start after `set-bounds`
        // never loads more than the retuned cap would keep.
        let entry_bound = lock_recovered(&self.inner).max_entries;
        let budget = limit.or(entry_bound).unwrap_or(usize::MAX).min(store.len());
        let entries = match store.bulk_load(Some(budget)) {
            Ok(loaded) => {
                if loaded.damaged > 0 {
                    lock_recovered(&self.inner).store_errors += loaded.damaged;
                }
                loaded.entries
            }
            Err(_) => {
                lock_recovered(&self.inner).store_errors += 1;
                return 0;
            }
        };
        let mut loaded = 0usize;
        // Oldest-first within the hot set, so the most recently written
        // key ends up most recently used.
        for (key, bytes) in entries.into_iter().rev() {
            match decode_stored_result(&bytes) {
                Ok((value, compute_ns)) => {
                    lock_recovered(&self.inner).insert(key, value, compute_ns);
                    loaded += 1;
                }
                Err(_) => lock_recovered(&self.inner).store_errors += 1,
            }
        }
        loaded
    }

    /// Drop every resident entry and zero the counters. In-flight
    /// computations are unaffected: they complete, wake their waiters,
    /// and repopulate the (now empty) cache. The persistent store tier
    /// is untouched — clearing memory does not forget durable results.
    pub fn clear(&self) {
        let mut inner = lock_recovered(&self.inner);
        inner.map.clear();
        inner.slab.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.free = NIL;
        inner.bytes = 0;
        inner.hits = 0;
        inner.misses = 0;
        inner.coalesced = 0;
        inner.bypasses = 0;
        inner.refreshes = 0;
        inner.evictions = 0;
        inner.cost_evictions = 0;
        inner.store_hits = 0;
        inner.store_misses = 0;
        inner.store_errors = 0;
        inner.compute_ns_min = 0;
        inner.compute_ns_max = 0;
        inner.compute_ns_total = 0;
    }
}

/// Fixed per-entry overhead the byte accounting charges on top of the
/// structures it can measure directly: the `HashMap`'s load-factor
/// slack (hashbrown keeps at most 7/8 of its slots occupied, so every
/// resident entry drags ~1/7 of a spare `(String, usize)` slot plus
/// control bytes), and malloc rounding on the entry's three heap
/// allocations (two key `String`s and the value's `Vec`s, each rounded
/// up to an allocator size class — typically up to 16 bytes each).
/// A single constant keeps the accounting O(1) and honest on average;
/// see `byte_bound_is_never_exceeded` for the invariant it protects.
const PER_ENTRY_OVERHEAD_BYTES: usize = 56;

/// Approximate resident footprint of one entry: both copies of the key
/// (map key + reverse-lookup copy in the entry), the map slot that
/// holds the key copy and slab index, the fixed-size parts, every heap
/// allocation hanging off the value, and the fixed
/// [`PER_ENTRY_OVERHEAD_BYTES`] for what the allocator and `HashMap`
/// add beyond them.
fn approx_entry_bytes(key: &str, value: &LayerDseResult) -> usize {
    let fixed = std::mem::size_of::<Entry>()
        + std::mem::size_of::<(String, usize)>() // the map's (key, index) slot
        + key.len() * 2
        + PER_ENTRY_OVERHEAD_BYTES;
    let pareto: usize = value
        .pareto
        .iter()
        .map(|p| std::mem::size_of_val(p) + p.label.len())
        .sum();
    fixed + value.layer_name.len() + pareto
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_core::dse::DseCandidate;
    use drmap_core::edp::EdpEstimate;
    use drmap_core::mapping::MappingPolicy;
    use drmap_core::schedule::ReuseScheme;
    use drmap_core::tiling::Tiling;

    fn result(name: &str) -> LayerDseResult {
        LayerDseResult {
            layer_name: name.to_owned(),
            best: DseCandidate {
                mapping: MappingPolicy::drmap(),
                tiling: Tiling::new(1, 1, 1, 1),
                scheme: ReuseScheme::OfmsReuse,
                estimate: EdpEstimate {
                    cycles: 1.0,
                    energy: 2.0,
                    t_ck_ns: 1.25,
                },
            },
            evaluations: 7,
            pareto: vec![],
        }
    }

    #[test]
    fn counts_hits_misses_and_entries() {
        let cache = DseCache::new();
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), result("a"));
        let hit = cache.get("k").unwrap();
        assert_eq!(hit.evaluations, 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.bytes > 0, "insertions are byte-accounted");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = DseCache::new();
        cache.insert("k".into(), result("a"));
        cache.get("k");
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert_eq!(stats.hit_rate(), 0.0);
        // The cache still works after a clear.
        cache.insert("k".into(), result("b"));
        assert_eq!(cache.get("k").unwrap().layer_name, "b");
    }

    #[test]
    fn is_shareable_across_threads() {
        let cache = std::sync::Arc::new(DseCache::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    let key = format!("k{}", i % 2);
                    cache.insert(key.clone(), result("x"));
                    cache.get(&key).expect("just inserted")
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().hits, 8);
    }

    #[test]
    fn entry_bound_evicts_least_recently_used_first() {
        let cache = DseCache::with_config(CacheConfig::unbounded().with_max_entries(2));
        cache.insert("k1".into(), result("a"));
        cache.insert("k2".into(), result("b"));
        // Touch k1 so k2 becomes the LRU entry.
        assert!(cache.get("k1").is_some());
        cache.insert("k3".into(), result("c"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get("k2").is_none(), "LRU entry was evicted");
        assert!(cache.get("k1").is_some(), "recently used entry survives");
        assert!(cache.get("k3").is_some(), "new entry survives");
    }

    #[test]
    fn reinserting_a_key_updates_in_place_without_eviction() {
        let cache = DseCache::with_config(CacheConfig::unbounded().with_max_entries(2));
        cache.insert("k1".into(), result("a"));
        cache.insert("k2".into(), result("b"));
        cache.insert("k1".into(), result("a2"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.get("k1").unwrap().layer_name, "a2");
    }

    #[test]
    fn byte_bound_is_never_exceeded() {
        let one_entry = approx_entry_bytes("k00", &result("x"));
        // Room for two entries but not three.
        let cache =
            DseCache::with_config(CacheConfig::unbounded().with_max_bytes(one_entry * 2 + 1));
        for i in 0..16 {
            cache.insert(format!("k{i:02}"), result("x"));
            let stats = cache.stats();
            assert!(
                stats.bytes <= one_entry * 2 + 1,
                "byte bound exceeded: {stats:?}"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 14);
    }

    #[test]
    fn an_oversized_entry_is_evicted_rather_than_kept() {
        let cache = DseCache::with_config(CacheConfig::unbounded().with_max_bytes(8));
        cache.insert("way-too-big".into(), result("x"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn zero_entry_bound_keeps_nothing_but_still_serves() {
        let cache = DseCache::with_config(CacheConfig::unbounded().with_max_entries(0));
        let (value, outcome) = cache.get_or_compute("k", || Ok(result("x"))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(value.layer_name, "x");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn get_or_compute_hits_after_a_miss() {
        let cache = DseCache::new();
        let (_, first) = cache.get_or_compute("k", || Ok(result("x"))).unwrap();
        let (again, second) = cache
            .get_or_compute("k", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(first, CacheOutcome::Miss);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(again.layer_name, "x");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = DseCache::new();
        let err = cache
            .get_or_compute("k", || Err(DseError::new("no feasible tiling")))
            .unwrap_err();
        assert!(err.to_string().contains("no feasible tiling"));
        // The failed key computes afresh on the next lookup.
        let (_, outcome) = cache.get_or_compute("k", || Ok(result("x"))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.stats().misses, 2);
    }

    /// Populate `key` through get_or_compute with an artificially slow
    /// (or instant) exploration, so the entry carries a controlled
    /// compute duration.
    fn compute_with_cost(cache: &DseCache, key: &str, slow: bool) {
        cache
            .get_or_compute(key, || {
                if slow {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Ok(result(key))
            })
            .unwrap();
    }

    #[test]
    fn cost_policy_evicts_cheapest_entry_first() {
        let cache = DseCache::with_config(
            CacheConfig::unbounded()
                .with_max_entries(2)
                .with_policy(EvictionPolicy::Cost),
        );
        compute_with_cost(&cache, "expensive-old", true);
        compute_with_cost(&cache, "expensive-new", true);
        // The third entry computes in microseconds — it is the cheapest
        // of the three and is sacrificed, even though it is the most
        // recently used; an LRU cache would have kept it and dropped
        // "expensive-old" instead.
        compute_with_cost(&cache, "cheap", false);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.cost_evictions, 1);
        assert!(cache.get("cheap").is_none(), "cheapest entry was evicted");
        assert!(cache.get("expensive-old").is_some());
        assert!(cache.get("expensive-new").is_some());
    }

    #[test]
    fn cost_policy_breaks_ties_toward_least_recently_used() {
        // Direct inserts carry no measurement: every entry costs 0, so
        // the cost policy degenerates to LRU — and counts its choices.
        let cache = DseCache::with_config(
            CacheConfig::unbounded()
                .with_max_entries(2)
                .with_policy(EvictionPolicy::Cost),
        );
        cache.insert("k1".into(), result("a"));
        cache.insert("k2".into(), result("b"));
        assert!(cache.get("k1").is_some(), "refresh k1's recency");
        cache.insert("k3".into(), result("c"));
        assert!(cache.get("k2").is_none(), "tie fell back to LRU order");
        assert!(cache.get("k1").is_some());
        assert!(cache.get("k3").is_some());
        assert_eq!(cache.stats().cost_evictions, 1);
        cache.clear();
        assert_eq!(cache.stats().cost_evictions, 0);
    }

    #[test]
    fn lru_policy_never_counts_cost_evictions() {
        let cache = DseCache::with_config(CacheConfig::unbounded().with_max_entries(1));
        cache.insert("k1".into(), result("a"));
        cache.insert("k2".into(), result("b"));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.cost_evictions, 0);
    }

    #[test]
    fn set_policy_takes_effect_on_the_next_eviction_without_a_restart() {
        let cache = DseCache::with_config(CacheConfig::unbounded().with_max_entries(2));
        assert_eq!(cache.policy(), EvictionPolicy::Lru);
        compute_with_cost(&cache, "expensive-a", true);
        compute_with_cost(&cache, "expensive-b", true);
        compute_with_cost(&cache, "cheap-1", false);
        // Under LRU the cheap entry (most recent) survives.
        assert!(cache.get("cheap-1").is_some());
        assert_eq!(cache.stats().cost_evictions, 0);

        // Flip the live cache to cost-aware eviction: entries, counters
        // and recency all survive the swap.
        assert_eq!(cache.set_policy(EvictionPolicy::Cost), EvictionPolicy::Lru);
        assert_eq!(cache.policy(), EvictionPolicy::Cost);
        let before = cache.stats();
        compute_with_cost(&cache, "cheap-2", false);
        let after = cache.stats();
        assert_eq!(after.cost_evictions, before.cost_evictions + 1);
        assert!(
            cache.get("expensive-b").is_some(),
            "cost policy keeps the expensive entry an LRU would have dropped"
        );

        // And back again: evictions return to pure recency.
        cache.set_policy(EvictionPolicy::Lru);
        compute_with_cost(&cache, "cheap-3", false);
        assert_eq!(cache.stats().cost_evictions, after.cost_evictions);
    }

    #[test]
    fn bypass_mode_neither_reads_nor_writes_the_cache() {
        let store = temp_store();
        let cache = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        cache.get_or_compute("k", || Ok(result("cached"))).unwrap();
        let baseline = cache.stats();

        // Bypass computes fresh even though a resident entry exists…
        let (value, outcome) = cache
            .get_or_compute_with("k", CacheMode::Bypass, || Ok(result("fresh")))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(value.layer_name, "fresh");
        // …leaves the resident entry and the store untouched…
        assert_eq!(cache.get("k").unwrap().layer_name, "cached");
        let (stored, _) = decode_stored_result(&store.get("k").unwrap().unwrap()).unwrap();
        assert_eq!(stored.layer_name, "cached");
        // …and is invisible to every counter except its own.
        let stats = cache.stats();
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.misses, baseline.misses);
        assert_eq!(stats.entries, baseline.entries);
        // A bypass panic is converted, not propagated.
        let err = cache
            .get_or_compute_with("k", CacheMode::Bypass, || panic!("bug"))
            .unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn refresh_mode_replaces_the_cached_and_persisted_entry() {
        let store = temp_store();
        let cache = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        cache.get_or_compute("k", || Ok(result("stale"))).unwrap();

        let (value, outcome) = cache
            .get_or_compute_with("k", CacheMode::Refresh, || Ok(result("fresh")))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "refresh recomputes");
        assert_eq!(value.layer_name, "fresh");
        // Both tiers now hold the refreshed value.
        assert_eq!(cache.get("k").unwrap().layer_name, "fresh");
        let (stored, _) = decode_stored_result(&store.get("k").unwrap().unwrap()).unwrap();
        assert_eq!(stored.layer_name, "fresh");
        let stats = cache.stats();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.entries, 1);
        // A later Default lookup is a plain hit on the fresh value.
        let (_, outcome) = cache
            .get_or_compute("k", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn refresh_never_coalesces_onto_an_inflight_computation() {
        use std::sync::Barrier;
        // A leader is mid-flight producing the value the operator wants
        // replaced; the refresh must NOT ride along and return it — it
        // waits the leader out and computes its own.
        let cache = Arc::new(DseCache::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                cache.get_or_compute("k", move || {
                    barrier.wait(); // the refresher is now on its way
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Ok(result("stale"))
                })
            })
        };
        barrier.wait();
        let (value, outcome) = cache
            .get_or_compute_with("k", CacheMode::Refresh, || Ok(result("fresh")))
            .unwrap();
        leader.join().unwrap().unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(value.layer_name, "fresh", "refresh computed its own value");
        assert_eq!(cache.stats().refreshes, 1);
        assert_eq!(
            cache.get("k").unwrap().layer_name,
            "fresh",
            "the refreshed value replaced the in-flight leader's"
        );
    }

    #[test]
    fn byte_accounting_charges_keys_map_slot_and_overhead() {
        let bytes = approx_entry_bytes("0123456789", &result("x"));
        assert!(
            bytes
                >= std::mem::size_of::<Entry>()
                    + std::mem::size_of::<(String, usize)>()
                    + 20
                    + PER_ENTRY_OVERHEAD_BYTES,
            "{bytes} undercounts the fixed footprint"
        );
        // Longer keys cost more: both resident copies are charged.
        let longer = approx_entry_bytes("0123456789abcdef", &result("x"));
        assert_eq!(longer - bytes, 12);
    }

    #[test]
    fn eviction_policy_labels_round_trip() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Cost] {
            assert_eq!(EvictionPolicy::from_label(policy.label()), Some(policy));
        }
        assert_eq!(EvictionPolicy::from_label("mru"), None);
        assert_eq!(CacheConfig::default().policy, EvictionPolicy::Lru);
    }

    fn temp_store() -> Arc<Store> {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "drmap-cache-tier-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.wal");
        let _ = std::fs::remove_file(&path);
        Arc::new(Store::open(path).unwrap())
    }

    #[test]
    fn computed_entries_record_their_duration() {
        let cache = DseCache::new();
        cache
            .get_or_compute("slow", || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                Ok(result("x"))
            })
            .unwrap();
        cache.get_or_compute("fast", || Ok(result("y"))).unwrap();
        let stats = cache.stats();
        assert!(stats.compute_ns_max >= 2_000_000, "{stats:?}");
        assert!(stats.compute_ns_min > 0, "{stats:?}");
        assert!(stats.compute_ns_min <= stats.compute_ns_max);
        assert!(stats.compute_ns_total >= stats.compute_ns_max + stats.compute_ns_min);
        // Direct inserts carry no measurement and do not disturb min.
        cache.insert("unmeasured".into(), result("z"));
        let with_unmeasured = cache.stats();
        assert_eq!(with_unmeasured.compute_ns_total, stats.compute_ns_total);
    }

    #[test]
    fn a_fresh_computation_writes_through_and_a_restart_reads_back() {
        let store = temp_store();
        let first = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        let (value, outcome) = first.get_or_compute("k", || Ok(result("x"))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(first.stats().store_misses, 1);
        assert_eq!(store.len(), 1, "write-through persisted the result");

        // "Restart": a brand-new resident tier over the same store.
        let second = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        let (revived, outcome) = second
            .get_or_compute("k", || panic!("store hit must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::StoreHit);
        assert_eq!(revived.layer_name, value.layer_name);
        assert_eq!(
            revived.best.estimate.energy.to_bits(),
            value.best.estimate.energy.to_bits()
        );
        let stats = second.stats();
        assert_eq!((stats.store_hits, stats.store_misses), (1, 0));
        assert_eq!(stats.misses, 1, "store hits are a subset of misses");
        assert!(stats.compute_ns_total > 0, "stored duration was revived");
        // The promoted entry now serves from memory.
        let (_, outcome) = second
            .get_or_compute("k", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        // Both lookups were served without exploration: one from disk,
        // one from memory.
        assert!((second.stats().hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_are_not_written_through() {
        let store = temp_store();
        let cache = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        let _ = cache.get_or_compute("k", || Err(DseError::new("no feasible tiling")));
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn warm_start_promotes_the_most_recent_entries() {
        let store = temp_store();
        let writer = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        for i in 0..6 {
            writer
                .get_or_compute(&format!("k{i}"), || Ok(result(&format!("r{i}"))))
                .unwrap();
        }
        // A bounded cache warms only up to its cap, newest first.
        let warmed = DseCache::with_store(
            CacheConfig::unbounded().with_max_entries(3),
            Arc::clone(&store),
        );
        assert_eq!(warmed.warm_from_store(None), 3);
        let stats = warmed.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!((stats.hits, stats.misses), (0, 0), "warming is not traffic");
        for i in 3..6 {
            let (_, outcome) = warmed
                .get_or_compute(&format!("k{i}"), || panic!("warmed key recomputed"))
                .unwrap();
            assert_eq!(outcome, CacheOutcome::Hit, "k{i} should be resident");
        }
        // An explicit limit wins over the cap.
        let partial = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        assert_eq!(partial.warm_from_store(Some(2)), 2);
        assert_eq!(partial.stats().entries, 2);
        // No store: warming is a no-op.
        assert_eq!(DseCache::new().warm_from_store(None), 0);
    }

    #[test]
    fn undecodable_store_bytes_degrade_to_recomputation() {
        let store = temp_store();
        store.put("k", b"definitely not a stored result").unwrap();
        let cache = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        let (_, outcome) = cache.get_or_compute("k", || Ok(result("x"))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let stats = cache.stats();
        assert_eq!(stats.store_errors, 1);
        // The recomputed value overwrote the garbage record.
        let (_, compute_ns) = decode_stored_result(&store.get("k").unwrap().unwrap()).unwrap();
        assert!(compute_ns > 0);
    }

    #[test]
    fn injected_store_faults_degrade_to_recomputation() {
        use drmap_store::store::{FaultDirective, StoreOp};
        let store = temp_store();
        store.attach_fault_hook(Box::new(|op| {
            // Reads and writes both fail; the cache must absorb it.
            matches!(op, StoreOp::Get | StoreOp::Put).then_some(FaultDirective::Fail)
        }));
        let cache = DseCache::with_store(CacheConfig::unbounded(), Arc::clone(&store));
        let (_, outcome) = cache.get_or_compute("k", || Ok(result("x"))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "faulted store is not a hit");
        // One error from the failed read-through, one from the failed
        // write-through; the caller saw neither.
        assert_eq!(cache.stats().store_errors, 2);
        // The resident tier still serves the entry.
        let (_, outcome) = cache
            .get_or_compute("k", || panic!("resident entry recomputed"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn a_panicking_computation_becomes_an_error() {
        let cache = DseCache::new();
        let err = cache
            .get_or_compute("k", || panic!("exploration bug"))
            .unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
        assert!(err.to_string().contains("exploration bug"), "{err}");
        // The cache is still fully usable afterwards (no poisoning).
        let (_, outcome) = cache.get_or_compute("k", || Ok(result("x"))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.stats().entries, 1);
    }
}
