//! The shared per-layer memoization cache.
//!
//! Keys come from [`drmap_core::dse::layer_cache_key`]: a canonical
//! string over the layer *shape*, accelerator configuration, sweep
//! configuration, and the profiled substrate. Because the key ignores
//! layer names, repeated shapes hit the cache whether they recur within
//! one network (VGG-16's duplicated conv blocks), across jobs, or on
//! resubmission of a whole batch. Values are full
//! [`LayerDseResult`]s, cloned out on hit, so a cached answer is
//! bit-identical to the original computation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use drmap_core::dse::LayerDseResult;

/// Hit/miss counters and current size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memoization cache for single-layer DSE results.
#[derive(Debug, Default)]
pub struct DseCache {
    map: Mutex<HashMap<String, LayerDseResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DseCache {
    /// An empty cache.
    pub fn new() -> Self {
        DseCache::default()
    }

    /// Look up a key, counting the outcome. The stored result's
    /// `layer_name` is whatever layer populated the entry first; callers
    /// overwrite it with the requesting layer's name.
    pub fn get(&self, key: &str) -> Option<LayerDseResult> {
        let map = self.map.lock().expect("cache mutex poisoned");
        match map.get(key) {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a result. Concurrent computations of the same key may both
    /// insert; they computed identical values, so last-write-wins is
    /// deterministic.
    pub fn insert(&self, key: String, result: LayerDseResult) {
        self.map
            .lock()
            .expect("cache mutex poisoned")
            .insert(key, result);
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache mutex poisoned").len(),
        }
    }

    /// Drop every entry and zero the counters.
    pub fn clear(&self) {
        self.map.lock().expect("cache mutex poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_core::dse::DseCandidate;
    use drmap_core::edp::EdpEstimate;
    use drmap_core::mapping::MappingPolicy;
    use drmap_core::schedule::ReuseScheme;
    use drmap_core::tiling::Tiling;

    fn result(name: &str) -> LayerDseResult {
        LayerDseResult {
            layer_name: name.to_owned(),
            best: DseCandidate {
                mapping: MappingPolicy::drmap(),
                tiling: Tiling::new(1, 1, 1, 1),
                scheme: ReuseScheme::OfmsReuse,
                estimate: EdpEstimate {
                    cycles: 1.0,
                    energy: 2.0,
                    t_ck_ns: 1.25,
                },
            },
            evaluations: 7,
            pareto: vec![],
        }
    }

    #[test]
    fn counts_hits_misses_and_entries() {
        let cache = DseCache::new();
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), result("a"));
        let hit = cache.get("k").unwrap();
        assert_eq!(hit.evaluations, 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = DseCache::new();
        cache.insert("k".into(), result("a"));
        cache.get("k");
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn is_shareable_across_threads() {
        let cache = std::sync::Arc::new(DseCache::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    let key = format!("k{}", i % 2);
                    cache.insert(key.clone(), result("x"));
                    cache.get(&key).expect("just inserted")
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().hits, 8);
    }
}
