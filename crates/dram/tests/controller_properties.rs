//! Property-based tests of the DRAM controller: timing and accounting
//! invariants must hold for arbitrary request streams on arbitrary
//! architectures, not just the structured patterns the profiler uses.

use drmap_dram::prelude::*;
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = DramArch> {
    prop_oneof![
        Just(DramArch::Ddr3),
        Just(DramArch::Salp1),
        Just(DramArch::Salp2),
        Just(DramArch::SalpMasa),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0usize..8,   // bank
        0usize..8,   // subarray
        0usize..64,  // row (small window to provoke conflicts)
        0usize..128, // column
        prop::bool::ANY,
    )
        .prop_map(|(bank, subarray, row, column, write)| {
            let address = PhysicalAddress {
                channel: 0,
                rank: 0,
                bank,
                subarray,
                row,
                column,
            };
            if write {
                Request::write(address)
            } else {
                Request::read(address)
            }
        })
}

fn mode_strategy() -> impl Strategy<Value = DriveMode> {
    prop_oneof![
        Just(DriveMode::Streamed),
        Just(DriveMode::Dependent),
        (1u64..64).prop_map(DriveMode::Spaced),
    ]
}

fn run(
    arch: DramArch,
    requests: &[Request],
    mode: DriveMode,
) -> (SimStats, Vec<drmap_dram::controller::ServiceRecord>) {
    let mut sim = DramSimulator::new(
        Geometry::salp_2gb_x8(),
        TimingParams::ddr3_1600k(),
        ControllerConfig::new(arch),
        EnergyParams::micron_2gb_x8(),
    )
    .expect("valid config");
    sim.set_keep_records(true);
    let stats = sim.run(requests, mode);
    let records = sim.records().to_vec();
    (stats, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request completes no earlier than the fastest possible
    /// access (a row-buffer hit) and no later than a bounded worst case.
    #[test]
    fn latency_bounds(
        arch in arch_strategy(),
        requests in prop::collection::vec(request_strategy(), 1..80),
        mode in mode_strategy(),
    ) {
        let t = TimingParams::ddr3_1600k();
        let n = requests.len() as u64;
        let (_, records) = run(arch, &requests, mode);
        prop_assert_eq!(records.len() as u64, n);
        let min_read = t.cl + t.t_burst;
        let min_write = t.cwl + t.t_burst;
        // Worst case: every earlier request serialized at tRC plus own
        // conflict service (loose bound).
        let worst = (n + 1) * (t.t_rc + t.t_rp + t.t_rcd + t.cl + t.t_burst + t.t_wr + 64);
        for r in &records {
            let floor = match r.kind {
                RequestKind::Read => min_read,
                RequestKind::Write => min_write,
            };
            prop_assert!(r.latency() >= floor, "latency {} below floor {}", r.latency(), floor);
            prop_assert!(r.latency() <= worst, "latency {} above bound {}", r.latency(), worst);
        }
    }

    /// Counter consistency: outcomes sum to requests; reads+writes match;
    /// command counts cover the outcome requirements (every non-hit needs
    /// an ACT, every RD/WR request issues exactly one column command).
    #[test]
    fn counter_consistency(
        arch in arch_strategy(),
        requests in prop::collection::vec(request_strategy(), 1..80),
    ) {
        let n = requests.len() as u64;
        let reads = requests.iter().filter(|r| r.kind == RequestKind::Read).count() as u64;
        let mut sim = DramSimulator::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(arch),
            EnergyParams::micron_2gb_x8(),
        ).unwrap();
        let stats = sim.run(&requests, DriveMode::Streamed);
        prop_assert_eq!(stats.outcome_counts.iter().sum::<u64>(), n);
        let k = sim.controller().counters();
        prop_assert_eq!(k.reads, reads);
        prop_assert_eq!(k.writes, n - reads);
        prop_assert_eq!(k.command_count(CommandKind::Read), reads);
        prop_assert_eq!(k.command_count(CommandKind::Write), n - reads);
        let acts_needed: u64 = RowBufferOutcome::ALL
            .iter()
            .filter(|o| o.needs_activate())
            .map(|&o| k.outcome_count(o))
            .sum();
        prop_assert_eq!(k.command_count(CommandKind::Activate), acts_needed);
        // Precharges never exceed activations (each PRE closes a row some
        // ACT opened).
        prop_assert!(
            k.command_count(CommandKind::Precharge) <= k.command_count(CommandKind::Activate)
        );
    }

    /// Dependent mode is never faster than streamed mode (overlap can
    /// only help), and spaced mode only adds idle time.
    #[test]
    fn mode_ordering(
        arch in arch_strategy(),
        requests in prop::collection::vec(request_strategy(), 1..60),
        gap in 1u64..32,
    ) {
        let (streamed, _) = run(arch, &requests, DriveMode::Streamed);
        let (dependent, _) = run(arch, &requests, DriveMode::Dependent);
        let (spaced, _) = run(arch, &requests, DriveMode::Spaced(gap));
        prop_assert!(streamed.makespan_cycles <= dependent.makespan_cycles);
        prop_assert!(dependent.makespan_cycles <= spaced.makespan_cycles);
    }

    /// Energy is positive, finite, and monotone in trace length when the
    /// trace is extended (more work can never cost less energy).
    #[test]
    fn energy_monotone_in_prefix(
        arch in arch_strategy(),
        requests in prop::collection::vec(request_strategy(), 2..60),
    ) {
        let half = requests.len() / 2;
        let (full, _) = run(arch, &requests, DriveMode::Streamed);
        let (prefix, _) = run(arch, &requests[..half.max(1)], DriveMode::Streamed);
        prop_assert!(full.energy.total().is_finite());
        prop_assert!(full.energy.total() > 0.0);
        prop_assert!(full.energy.total() >= prefix.energy.total() * 0.999);
    }

    /// Identical requests back-to-back: the second is always a hit (open
    /// row policy), on every architecture.
    #[test]
    fn repeat_access_hits(arch in arch_strategy(), req in request_strategy()) {
        let requests = vec![req, req];
        let (stats, records) = run(arch, &requests, DriveMode::Dependent);
        prop_assert!(records[1].outcome.is_hit(), "second identical access must hit");
        prop_assert_eq!(stats.requests, 2);
    }

    /// The FR-FCFS scheduler serves the same multiset of requests (same
    /// outcome totals for reads/writes) and never increases the makespan
    /// versus FCFS by more than the reorder-window slack.
    #[test]
    fn frfcfs_serves_all_requests(
        arch in arch_strategy(),
        requests in prop::collection::vec(request_strategy(), 1..60),
    ) {
        let mut sim = DramSimulator::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            ControllerConfig {
                scheduler: SchedulerKind::FrFcfs,
                ..ControllerConfig::new(arch)
            },
            EnergyParams::micron_2gb_x8(),
        ).unwrap();
        let stats = sim.run(&requests, DriveMode::Streamed);
        prop_assert_eq!(stats.requests, requests.len() as u64);
        let k = sim.controller().counters();
        let reads = requests.iter().filter(|r| r.kind == RequestKind::Read).count() as u64;
        prop_assert_eq!(k.reads, reads);
    }
}
