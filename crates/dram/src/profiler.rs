//! The access-condition profiler: regenerates the per-access latency and
//! energy values of Fig. 1 and produces the [`AccessCostTable`] that the
//! analytical EDP model (Eq. 2/3 of the paper) consumes.
//!
//! Two views are provided:
//!
//! * [`Profiler::fig1_profile`] measures the paper's five access conditions
//!   with the paper's semantics: isolated (dependent) accesses for
//!   hit/miss/conflict, and streamed sweeps for subarray- and bank-level
//!   parallelism.
//! * [`Profiler::cost_table`] measures the four *transition classes* of
//!   Eq. 2/3 (`dif_column`, `dif_banks`, `dif_subarrays`, `dif_rows`) under
//!   streamed access — the way a CNN accelerator's DMA engine actually
//!   fetches tile data — separately for reads and writes.

use core::fmt;

use crate::controller::ControllerConfig;
use crate::energy::EnergyParams;
use crate::error::ConfigError;
use crate::geometry::{Geometry, Level};
use crate::request::{DriveMode, Request, RequestKind};
use crate::sim::DramSimulator;
use crate::state::RowBufferOutcome;
use crate::timing::{DramArch, TimingParams};
use crate::trace::TraceBuilder;

/// The five access conditions of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessCondition {
    /// Requested row already in the row buffer.
    RowBufferHit,
    /// No row open; activation required.
    RowBufferMiss,
    /// Wrong row open; precharge + activation required.
    RowBufferConflict,
    /// Alternating accesses across subarrays of one bank.
    SubarrayParallel,
    /// Alternating accesses across banks.
    BankParallel,
}

impl AccessCondition {
    /// All conditions in the order Fig. 1 plots them.
    pub const ALL: [AccessCondition; 5] = [
        AccessCondition::RowBufferHit,
        AccessCondition::RowBufferMiss,
        AccessCondition::RowBufferConflict,
        AccessCondition::SubarrayParallel,
        AccessCondition::BankParallel,
    ];

    /// Axis label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            AccessCondition::RowBufferHit => "Row buffer hit",
            AccessCondition::RowBufferMiss => "Row buffer miss",
            AccessCondition::RowBufferConflict => "Row buffer conflict",
            AccessCondition::SubarrayParallel => "Subarray-level parallelism",
            AccessCondition::BankParallel => "Bank-level parallelism",
        }
    }
}

impl fmt::Display for AccessCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The four transition classes of Eq. 2/3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransitionClass {
    /// Next access differs only in column: a row-buffer hit.
    DifColumn,
    /// Next access moves to a different bank (bank-level parallelism).
    DifBank,
    /// Next access moves to a different subarray of the same bank.
    DifSubarray,
    /// Next access moves to a different row of the same subarray: a
    /// row-buffer conflict. A tile's first access is also costed here.
    DifRow,
}

impl TransitionClass {
    /// All classes.
    pub const ALL: [TransitionClass; 4] = [
        TransitionClass::DifColumn,
        TransitionClass::DifBank,
        TransitionClass::DifSubarray,
        TransitionClass::DifRow,
    ];

    /// Map an address-divergence level to its transition class.
    ///
    /// Rank and channel divergences behave like bank-level parallelism
    /// (independent resources), so they cost as [`TransitionClass::DifBank`].
    pub fn from_level(level: Level) -> Self {
        match level {
            Level::Column => TransitionClass::DifColumn,
            Level::Bank | Level::Rank | Level::Channel | Level::Chip => TransitionClass::DifBank,
            Level::Subarray => TransitionClass::DifSubarray,
            Level::Row => TransitionClass::DifRow,
        }
    }

    /// Short name used in tables (`dif_column`, ...).
    pub fn name(self) -> &'static str {
        match self {
            TransitionClass::DifColumn => "dif_column",
            TransitionClass::DifBank => "dif_banks",
            TransitionClass::DifSubarray => "dif_subarrays",
            TransitionClass::DifRow => "dif_rows",
        }
    }

    fn index(self) -> usize {
        match self {
            TransitionClass::DifColumn => 0,
            TransitionClass::DifBank => 1,
            TransitionClass::DifSubarray => 2,
            TransitionClass::DifRow => 3,
        }
    }
}

impl fmt::Display for TransitionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Measured per-access cost: cycles and energy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessCost {
    /// Average cycles per access.
    pub cycles: f64,
    /// Average energy per access in joules.
    pub energy: f64,
}

impl AccessCost {
    /// Energy-delay product contribution of one access at this cost
    /// (J·cycles; callers convert cycles to seconds).
    pub fn edp_weight(&self) -> f64 {
        self.cycles * self.energy
    }
}

/// Per-architecture cost table for the four transition classes, split by
/// request direction. This is the hand-off artefact from the DRAM
/// simulator to the analytical DSE (the paper's Fig. 8 arrow from
/// Ramulator/VAMPIRE into the in-house simulator).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessCostTable {
    /// Architecture the table was measured on.
    pub arch: DramArch,
    read: [AccessCost; 4],
    write: [AccessCost; 4],
    /// Clock period used, for cycle→seconds conversion downstream.
    pub t_ck_ns: f64,
}

impl AccessCostTable {
    /// Cost of one access of the given class and direction.
    pub fn cost(&self, class: TransitionClass, kind: RequestKind) -> AccessCost {
        match kind {
            RequestKind::Read => self.read[class.index()],
            RequestKind::Write => self.write[class.index()],
        }
    }

    /// Build a table from explicit entries (useful for tests and for
    /// feeding externally measured values, e.g. from real Ramulator runs).
    pub fn from_costs(
        arch: DramArch,
        read: [AccessCost; 4],
        write: [AccessCost; 4],
        t_ck_ns: f64,
    ) -> Self {
        AccessCostTable {
            arch,
            read,
            write,
            t_ck_ns,
        }
    }
}

/// Measures access-condition costs on the DRAM simulator.
///
/// # Examples
///
/// ```
/// use drmap_dram::profiler::Profiler;
/// use drmap_dram::timing::DramArch;
///
/// let profiler = Profiler::table_ii()?;
/// let table = profiler.cost_table(DramArch::Ddr3);
/// let hit = table.cost(
///     drmap_dram::profiler::TransitionClass::DifColumn,
///     drmap_dram::request::RequestKind::Read,
/// );
/// assert!(hit.cycles < 10.0);
/// # Ok::<(), drmap_dram::error::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    geometry: Geometry,
    timing: TimingParams,
    energy: EnergyParams,
    /// Sweep rounds for the streamed patterns.
    rounds: usize,
}

impl Profiler {
    /// Profiler for the paper's Table II configuration (SALP geometry is
    /// used for every architecture so footprints are identical; DDR3 simply
    /// does not exploit the subarrays).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the built-in configuration fails
    /// validation (it does not).
    pub fn table_ii() -> Result<Self, ConfigError> {
        Self::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            EnergyParams::micron_2gb_x8(),
        )
    }

    /// Profiler for a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on invalid geometry/timing/energy
    /// parameters, or if the geometry has fewer than two banks or subarrays
    /// (the sweep patterns need them).
    pub fn new(
        geometry: Geometry,
        timing: TimingParams,
        energy: EnergyParams,
    ) -> Result<Self, ConfigError> {
        geometry.validate()?;
        timing.validate()?;
        energy.validate()?;
        if geometry.banks < 2 {
            return Err(ConfigError::new("profiler needs at least 2 banks"));
        }
        if geometry.subarrays < 2 {
            return Err(ConfigError::new(
                "profiler needs at least 2 subarrays per bank",
            ));
        }
        Ok(Profiler {
            geometry,
            timing,
            energy,
            rounds: 16,
        })
    }

    /// Override the number of sweep rounds (default 16).
    pub fn set_rounds(&mut self, rounds: usize) {
        self.rounds = rounds.max(2);
    }

    fn simulator(&self, arch: DramArch) -> DramSimulator {
        DramSimulator::new(
            self.geometry,
            self.timing,
            ControllerConfig::new(arch),
            self.energy,
        )
        .expect("profiler configuration already validated")
    }

    fn measure(&self, arch: DramArch, trace: &[Request], mode: DriveMode) -> AccessCost {
        let mut sim = self.simulator(arch);
        let stats = sim.run(trace, mode);
        let cycles = if mode.is_serialized() {
            stats.mean_latency_cycles()
        } else {
            stats.cycles_per_access()
        };
        AccessCost {
            cycles,
            energy: stats.energy_per_access(),
        }
    }

    /// Gap that quiesces all bank-local timings (tRC is the longest).
    fn isolation_gap(&self) -> DriveMode {
        DriveMode::Spaced(self.timing.t_rc)
    }

    fn with_kind(trace: Vec<Request>, kind: RequestKind) -> Vec<Request> {
        trace.into_iter().map(|r| Request { kind, ..r }).collect()
    }

    /// Measure one Fig. 1 condition for the given architecture.
    pub fn fig1_condition(
        &self,
        arch: DramArch,
        condition: AccessCondition,
        kind: RequestKind,
    ) -> AccessCost {
        let banks = self.geometry.banks;
        let subarrays = self.geometry.subarrays;
        match condition {
            AccessCondition::RowBufferHit => {
                // Isolated hits: one warm-up miss then spaced hits.
                let trace = Self::with_kind(
                    TraceBuilder::new()
                        .sequential_columns(0, 0, 0, self.geometry.bursts_per_row().min(64))
                        .build(),
                    kind,
                );
                let mut sim = self.simulator(arch);
                sim.set_keep_records(true);
                let _ = sim.run(&trace, self.isolation_gap());
                self.average_outcome(&sim, RowBufferOutcome::Hit, &trace, arch)
            }
            AccessCondition::RowBufferMiss => {
                // First touch of each bank: pure misses, isolated.
                let trace = Self::with_kind(TraceBuilder::new().bank_sweep(banks, 1).build(), kind);
                self.measure(arch, &trace, self.isolation_gap())
            }
            AccessCondition::RowBufferConflict => {
                let trace =
                    Self::with_kind(TraceBuilder::new().row_conflicts(0, 0, 48).build(), kind);
                let mut sim = self.simulator(arch);
                sim.set_keep_records(true);
                let _ = sim.run(&trace, self.isolation_gap());
                self.average_outcome(&sim, RowBufferOutcome::Conflict, &trace, arch)
            }
            AccessCondition::SubarrayParallel => {
                let trace = Self::with_kind(
                    TraceBuilder::new()
                        .subarray_sweep(0, subarrays, self.rounds)
                        .build(),
                    kind,
                );
                self.measure(arch, &trace, DriveMode::Streamed)
            }
            AccessCondition::BankParallel => {
                let trace = Self::with_kind(
                    TraceBuilder::new().bank_sweep(banks, self.rounds).build(),
                    kind,
                );
                self.measure(arch, &trace, DriveMode::Streamed)
            }
        }
    }

    /// Average latency over requests with the given outcome; energy is the
    /// run total divided by all requests (the warm-up access amortizes).
    fn average_outcome(
        &self,
        sim: &DramSimulator,
        outcome: RowBufferOutcome,
        trace: &[Request],
        arch: DramArch,
    ) -> AccessCost {
        let matching: Vec<u64> = sim
            .records()
            .iter()
            .filter(|r| r.outcome == outcome)
            .map(|r| r.latency())
            .collect();
        let cycles = if matching.is_empty() {
            0.0
        } else {
            matching.iter().sum::<u64>() as f64 / matching.len() as f64
        };
        // Re-run for energy (the records-run consumed the simulator state).
        let mut fresh = self.simulator(arch);
        let stats = fresh.run(trace, self.isolation_gap());
        AccessCost {
            cycles,
            energy: stats.energy_per_access(),
        }
    }

    /// Full Fig. 1 profile: every condition for one architecture (reads).
    pub fn fig1_profile(&self, arch: DramArch) -> Vec<(AccessCondition, AccessCost)> {
        AccessCondition::ALL
            .iter()
            .map(|&c| (c, self.fig1_condition(arch, c, RequestKind::Read)))
            .collect()
    }

    /// Measure the streamed per-access cost of one transition class.
    pub fn transition_cost(
        &self,
        arch: DramArch,
        class: TransitionClass,
        kind: RequestKind,
    ) -> AccessCost {
        let banks = self.geometry.banks;
        let subarrays = self.geometry.subarrays;
        let trace = match class {
            TransitionClass::DifColumn => TraceBuilder::new()
                .sequential_columns(0, 0, 0, self.geometry.bursts_per_row())
                .build(),
            TransitionClass::DifBank => TraceBuilder::new().bank_sweep(banks, self.rounds).build(),
            TransitionClass::DifSubarray => TraceBuilder::new()
                .subarray_sweep(0, subarrays, self.rounds)
                .build(),
            TransitionClass::DifRow => TraceBuilder::new().row_conflicts(0, 0, 64).build(),
        };
        self.measure(arch, &Self::with_kind(trace, kind), DriveMode::Streamed)
    }

    /// Produce the full [`AccessCostTable`] for one architecture.
    pub fn cost_table(&self, arch: DramArch) -> AccessCostTable {
        let mut read = [AccessCost::default(); 4];
        let mut write = [AccessCost::default(); 4];
        for class in TransitionClass::ALL {
            read[class.index()] = self.transition_cost(arch, class, RequestKind::Read);
            write[class.index()] = self.transition_cost(arch, class, RequestKind::Write);
        }
        AccessCostTable {
            arch,
            read,
            write,
            t_ck_ns: self.timing.t_ck_ns,
        }
    }

    /// Cost tables for all four architectures.
    pub fn all_cost_tables(&self) -> Vec<AccessCostTable> {
        DramArch::ALL.iter().map(|&a| self.cost_table(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler() -> Profiler {
        let mut p = Profiler::table_ii().unwrap();
        p.set_rounds(4);
        p
    }

    #[test]
    fn isolated_hit_miss_conflict_latencies_match_theory() {
        let p = profiler();
        let t = TimingParams::ddr3_1600k();
        let hit = p.fig1_condition(
            DramArch::Ddr3,
            AccessCondition::RowBufferHit,
            RequestKind::Read,
        );
        let miss = p.fig1_condition(
            DramArch::Ddr3,
            AccessCondition::RowBufferMiss,
            RequestKind::Read,
        );
        let conflict = p.fig1_condition(
            DramArch::Ddr3,
            AccessCondition::RowBufferConflict,
            RequestKind::Read,
        );
        assert_eq!(hit.cycles, (t.cl + t.t_burst) as f64);
        assert_eq!(miss.cycles, (t.t_rcd + t.cl + t.t_burst) as f64);
        assert_eq!(
            conflict.cycles,
            (t.t_rp + t.t_rcd + t.cl + t.t_burst) as f64
        );
    }

    #[test]
    fn fig1_ordering_hit_lt_miss_lt_conflict() {
        let p = profiler();
        for arch in DramArch::ALL {
            let hit = p.fig1_condition(arch, AccessCondition::RowBufferHit, RequestKind::Read);
            let miss = p.fig1_condition(arch, AccessCondition::RowBufferMiss, RequestKind::Read);
            let conflict =
                p.fig1_condition(arch, AccessCondition::RowBufferConflict, RequestKind::Read);
            assert!(hit.cycles < miss.cycles, "{arch}");
            assert!(miss.cycles < conflict.cycles, "{arch}");
            assert!(hit.energy < miss.energy, "{arch}");
            assert!(miss.energy <= conflict.energy * 1.05, "{arch}");
        }
    }

    #[test]
    fn salp_subarray_parallelism_ladder() {
        let p = profiler();
        let cost = |a| {
            p.fig1_condition(a, AccessCondition::SubarrayParallel, RequestKind::Read)
                .cycles
        };
        let ddr3 = cost(DramArch::Ddr3);
        let salp1 = cost(DramArch::Salp1);
        let salp2 = cost(DramArch::Salp2);
        let masa = cost(DramArch::SalpMasa);
        assert!(ddr3 > salp1, "DDR3 {ddr3} vs SALP-1 {salp1}");
        assert!(salp1 >= salp2, "SALP-1 {salp1} vs SALP-2 {salp2}");
        assert!(salp2 > masa, "SALP-2 {salp2} vs MASA {masa}");
    }

    #[test]
    fn bank_parallelism_similar_across_archs_and_cheap() {
        let p = profiler();
        let costs: Vec<f64> = DramArch::ALL
            .iter()
            .map(|&a| {
                p.fig1_condition(a, AccessCondition::BankParallel, RequestKind::Read)
                    .cycles
            })
            .collect();
        let conflict = p
            .fig1_condition(
                DramArch::Ddr3,
                AccessCondition::RowBufferConflict,
                RequestKind::Read,
            )
            .cycles;
        for &c in &costs {
            assert!(c < conflict / 2.0, "bank parallelism should be cheap: {c}");
        }
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.5, "BLP should be arch-insensitive: {costs:?}");
    }

    #[test]
    fn cost_table_orderings_for_dse() {
        let p = profiler();
        for arch in DramArch::ALL {
            let t = p.cost_table(arch);
            let col = t.cost(TransitionClass::DifColumn, RequestKind::Read);
            let bank = t.cost(TransitionClass::DifBank, RequestKind::Read);
            let sa = t.cost(TransitionClass::DifSubarray, RequestKind::Read);
            let row = t.cost(TransitionClass::DifRow, RequestKind::Read);
            // The DRMap priority order: columns cheapest, rows dearest.
            assert!(col.cycles <= bank.cycles, "{arch}: col vs bank");
            assert!(bank.cycles <= sa.cycles * 1.01, "{arch}: bank vs subarray");
            assert!(sa.cycles <= row.cycles * 1.01, "{arch}: subarray vs row");
        }
    }

    #[test]
    fn ddr3_subarray_equals_conflict_class() {
        let p = profiler();
        let t = p.cost_table(DramArch::Ddr3);
        let sa = t.cost(TransitionClass::DifSubarray, RequestKind::Read);
        let row = t.cost(TransitionClass::DifRow, RequestKind::Read);
        // On DDR3, crossing subarrays is just a row conflict.
        assert!((sa.cycles - row.cycles).abs() / row.cycles < 0.25);
    }

    #[test]
    fn masa_subarray_class_close_to_bank_class() {
        let p = profiler();
        let t = p.cost_table(DramArch::SalpMasa);
        let sa = t.cost(TransitionClass::DifSubarray, RequestKind::Read);
        let bank = t.cost(TransitionClass::DifBank, RequestKind::Read);
        let row = t.cost(TransitionClass::DifRow, RequestKind::Read);
        assert!(sa.cycles < row.cycles / 2.0);
        assert!(sa.cycles < bank.cycles * 3.0);
    }

    #[test]
    fn write_costs_at_least_read_costs_for_conflicts() {
        let p = profiler();
        let t = p.cost_table(DramArch::Ddr3);
        let rd = t.cost(TransitionClass::DifRow, RequestKind::Read);
        let wr = t.cost(TransitionClass::DifRow, RequestKind::Write);
        assert!(wr.cycles >= rd.cycles * 0.9);
    }

    #[test]
    fn transition_class_from_level() {
        assert_eq!(
            TransitionClass::from_level(Level::Column),
            TransitionClass::DifColumn
        );
        assert_eq!(
            TransitionClass::from_level(Level::Rank),
            TransitionClass::DifBank
        );
        assert_eq!(
            TransitionClass::from_level(Level::Subarray),
            TransitionClass::DifSubarray
        );
        assert_eq!(
            TransitionClass::from_level(Level::Row),
            TransitionClass::DifRow
        );
    }

    #[test]
    fn profiler_rejects_single_bank() {
        let g = Geometry::builder().banks(1).rows(32768).build().unwrap();
        assert!(Profiler::new(g, TimingParams::ddr3_1600k(), EnergyParams::default()).is_err());
    }

    #[test]
    fn from_costs_roundtrip() {
        let costs = [AccessCost {
            cycles: 1.0,
            energy: 2.0,
        }; 4];
        let t = AccessCostTable::from_costs(DramArch::Ddr3, costs, costs, 1.25);
        assert_eq!(
            t.cost(TransitionClass::DifRow, RequestKind::Write).cycles,
            1.0
        );
    }
}
