//! The DRAM simulator: drives a request trace through the controller and
//! aggregates cycle, outcome, and energy statistics.
//!
//! This is the substitute for the paper's Ramulator + VAMPIRE tool flow
//! (Fig. 8): requests in, `{cycles, energy}` statistics out.

use crate::controller::{ControllerConfig, MemoryController, SchedulerKind, ServiceRecord};
use crate::energy::{EnergyBreakdown, EnergyModel, EnergyParams};
use crate::error::ConfigError;
use crate::geometry::Geometry;
use crate::request::{DriveMode, Request};
use crate::state::RowBufferOutcome;
use crate::timing::TimingParams;

/// Aggregated results of simulating one request trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimStats {
    /// Number of requests served.
    pub requests: u64,
    /// Completion cycle of the last request.
    pub makespan_cycles: u64,
    /// Sum of per-request latencies in cycles.
    pub total_latency_cycles: u64,
    /// Requests per row-buffer outcome, indexed by [`RowBufferOutcome::ALL`].
    pub outcome_counts: [u64; 5],
    /// Energy breakdown over the simulated interval.
    pub energy: EnergyBreakdown,
}

impl SimStats {
    /// Mean per-request latency in cycles.
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.requests as f64
        }
    }

    /// Mean cycles per access measured as makespan over request count —
    /// the steady-state (streamed) per-access cost.
    pub fn cycles_per_access(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.makespan_cycles as f64 / self.requests as f64
        }
    }

    /// Mean energy per access in joules.
    pub fn energy_per_access(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.energy.total() / self.requests as f64
        }
    }

    /// Count for one outcome.
    pub fn outcome_count(&self, outcome: RowBufferOutcome) -> u64 {
        let idx = RowBufferOutcome::ALL
            .iter()
            .position(|&o| o == outcome)
            .unwrap();
        self.outcome_counts[idx]
    }

    /// Row-buffer hit rate (hits + hit-other-subarray over all requests).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let hits = self.outcome_count(RowBufferOutcome::Hit)
            + self.outcome_count(RowBufferOutcome::HitOtherSubarray);
        hits as f64 / self.requests as f64
    }

    /// Data-bus utilization: burst-transfer cycles over the makespan.
    /// 1.0 means the bus streamed data back-to-back (the tCCD limit).
    pub fn bus_utilization(&self, t_burst: u64) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            (self.requests * t_burst) as f64 / self.makespan_cycles as f64
        }
    }
}

/// DRAM simulator: a controller plus an energy model.
///
/// # Examples
///
/// ```
/// use drmap_dram::sim::DramSimulator;
/// use drmap_dram::controller::ControllerConfig;
/// use drmap_dram::geometry::Geometry;
/// use drmap_dram::timing::{DramArch, TimingParams};
/// use drmap_dram::request::{DriveMode, Request};
/// use drmap_dram::address::PhysicalAddress;
///
/// let mut sim = DramSimulator::new(
///     Geometry::ddr3_2gb_x8(),
///     TimingParams::ddr3_1600k(),
///     ControllerConfig::new(DramArch::Ddr3),
///     Default::default(),
/// )?;
/// let trace: Vec<Request> = (0..16)
///     .map(|c| Request::read(PhysicalAddress { column: c, ..PhysicalAddress::default() }))
///     .collect();
/// let stats = sim.run(&trace, DriveMode::Streamed);
/// assert_eq!(stats.requests, 16);
/// assert!(stats.hit_rate() > 0.9); // same row: all but the first hit
/// # Ok::<(), drmap_dram::error::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DramSimulator {
    controller: MemoryController,
    energy: EnergyModel,
    records: Vec<ServiceRecord>,
    keep_records: bool,
}

impl DramSimulator {
    /// Create a simulator.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(
        geometry: Geometry,
        timing: TimingParams,
        config: ControllerConfig,
        energy_params: EnergyParams,
    ) -> Result<Self, ConfigError> {
        let controller = MemoryController::new(geometry, timing, config)?;
        let energy = EnergyModel::new(geometry, timing, energy_params)?;
        Ok(DramSimulator {
            controller,
            energy,
            records: Vec::new(),
            keep_records: false,
        })
    }

    /// Keep per-request [`ServiceRecord`]s for inspection.
    pub fn set_keep_records(&mut self, keep: bool) {
        self.keep_records = keep;
    }

    /// Per-request records of the last run (empty unless enabled).
    pub fn records(&self) -> &[ServiceRecord] {
        &self.records
    }

    /// The underlying controller (for command-trace export).
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// Run a trace to completion and return statistics for this run.
    ///
    /// The simulator is stateful: a second run continues from the DRAM
    /// state the first one left behind, but the returned statistics
    /// (cycles, outcomes, energy) cover only the new run.
    pub fn run(&mut self, trace: &[Request], mode: DriveMode) -> SimStats {
        self.records.clear();
        let start_makespan = self.controller.makespan();
        let start_counters = self.controller.finalized_counters();
        let mut total_latency = 0u64;
        let mut outcome_counts = [0u64; 5];
        let mut arrival = start_makespan;
        let scheduler = self.controller.config().scheduler;
        let window = self.controller.config().reorder_window.max(1);

        let mut serve_one = |controller: &mut MemoryController,
                             req: Request,
                             arrival: &mut u64,
                             records: &mut Vec<ServiceRecord>,
                             keep: bool| {
            let rec = controller.serve(req, *arrival);
            total_latency += rec.latency();
            let idx = RowBufferOutcome::ALL
                .iter()
                .position(|&o| o == rec.outcome)
                .unwrap();
            outcome_counts[idx] += 1;
            match mode {
                DriveMode::Dependent => *arrival = rec.completion,
                DriveMode::Spaced(gap) => *arrival = rec.completion + gap,
                DriveMode::Streamed => {}
            }
            if keep {
                records.push(rec);
            }
        };

        let mut served = 0u64;
        match scheduler {
            SchedulerKind::Fcfs => {
                for &req in trace {
                    serve_one(
                        &mut self.controller,
                        req,
                        &mut arrival,
                        &mut self.records,
                        self.keep_records,
                    );
                    served += 1;
                }
            }
            SchedulerKind::FrFcfs => {
                let mut pending: std::collections::VecDeque<Request> =
                    trace.iter().copied().collect();
                while !pending.is_empty() {
                    let lim = window.min(pending.len());
                    let pick = pending
                        .iter()
                        .take(lim)
                        .position(|r| self.controller.peek_outcome(&r.address).is_hit())
                        .unwrap_or(0);
                    let req = pending.remove(pick).unwrap();
                    serve_one(
                        &mut self.controller,
                        req,
                        &mut arrival,
                        &mut self.records,
                        self.keep_records,
                    );
                    served += 1;
                }
            }
        }
        let _ = &serve_one;

        let makespan = self.controller.makespan() - start_makespan;
        let counters = self.controller.finalized_counters().since(&start_counters);
        let energy = self.energy.breakdown(&counters, makespan);
        SimStats {
            requests: served,
            makespan_cycles: makespan,
            total_latency_cycles: total_latency,
            outcome_counts,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysicalAddress;
    use crate::timing::DramArch;

    fn addr(bank: usize, subarray: usize, row: usize, column: usize) -> PhysicalAddress {
        PhysicalAddress {
            channel: 0,
            rank: 0,
            bank,
            subarray,
            row,
            column,
        }
    }

    fn sim(arch: DramArch) -> DramSimulator {
        let geometry = match arch {
            DramArch::Ddr3 => Geometry::ddr3_2gb_x8(),
            _ => Geometry::salp_2gb_x8(),
        };
        DramSimulator::new(
            geometry,
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(arch),
            EnergyParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn hit_stream_reaches_tccd_pipelining() {
        let mut s = sim(DramArch::Ddr3);
        let trace: Vec<Request> = (0..64).map(|c| Request::read(addr(0, 0, 0, c))).collect();
        let stats = s.run(&trace, DriveMode::Streamed);
        // Steady state: one read per tCCD(=4) cycles, plus the initial miss.
        assert!(
            stats.cycles_per_access() < 6.0,
            "{}",
            stats.cycles_per_access()
        );
        assert_eq!(stats.outcome_count(RowBufferOutcome::Miss), 1);
        assert_eq!(stats.outcome_count(RowBufferOutcome::Hit), 63);
    }

    #[test]
    fn conflict_stream_is_trc_limited() {
        let mut s = sim(DramArch::Ddr3);
        let trace: Vec<Request> = (0..32).map(|r| Request::read(addr(0, 0, r, 0))).collect();
        let stats = s.run(&trace, DriveMode::Streamed);
        let t = TimingParams::ddr3_1600k();
        assert!(stats.cycles_per_access() >= t.t_rc as f64 * 0.8);
    }

    #[test]
    fn dependent_mode_reports_isolated_latencies() {
        let mut s = sim(DramArch::Ddr3);
        let trace = vec![
            Request::read(addr(0, 0, 0, 0)),
            Request::read(addr(0, 0, 0, 1)),
        ];
        let stats = s.run(&trace, DriveMode::Dependent);
        let t = TimingParams::ddr3_1600k();
        let expect = (t.t_rcd + t.cl + t.t_burst) + (t.cl + t.t_burst);
        assert_eq!(stats.total_latency_cycles, expect);
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        let mk_trace = || {
            vec![
                Request::read(addr(0, 0, 0, 0)),
                Request::read(addr(0, 0, 1, 0)), // conflict
                Request::read(addr(0, 0, 0, 1)), // hit if served before the conflict
                Request::read(addr(0, 0, 0, 2)),
            ]
        };
        let mut fcfs = sim(DramArch::Ddr3);
        let s1 = fcfs.run(&mk_trace(), DriveMode::Streamed);
        let cfg = ControllerConfig {
            scheduler: SchedulerKind::FrFcfs,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut frf = DramSimulator::new(
            Geometry::ddr3_2gb_x8(),
            TimingParams::ddr3_1600k(),
            cfg,
            EnergyParams::default(),
        )
        .unwrap();
        let s2 = frf.run(&mk_trace(), DriveMode::Streamed);
        assert!(s2.hit_rate() > s1.hit_rate());
        assert!(s2.makespan_cycles <= s1.makespan_cycles);
    }

    #[test]
    fn masa_beats_salp1_on_subarray_pingpong() {
        let pattern: Vec<Request> = (0..32)
            .map(|i| Request::read(addr(0, i % 4, (i % 4) * 7, (i / 4) % 8)))
            .collect();
        let mut m = sim(DramArch::SalpMasa);
        let mut s1 = sim(DramArch::Salp1);
        let mut d = DramSimulator::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(DramArch::Ddr3),
            EnergyParams::default(),
        )
        .unwrap();
        let masa = m.run(&pattern, DriveMode::Streamed);
        let salp1 = s1.run(&pattern, DriveMode::Streamed);
        let ddr3 = d.run(&pattern, DriveMode::Streamed);
        assert!(masa.makespan_cycles < salp1.makespan_cycles);
        assert!(salp1.makespan_cycles < ddr3.makespan_cycles);
    }

    #[test]
    fn energy_grows_with_trace_length() {
        let mut s = sim(DramArch::Ddr3);
        let short: Vec<Request> = (0..8).map(|c| Request::read(addr(0, 0, 0, c))).collect();
        let stats_short = s.run(&short, DriveMode::Streamed);
        let mut s2 = sim(DramArch::Ddr3);
        let long: Vec<Request> = (0..80)
            .map(|c| Request::read(addr(0, 0, 0, c % 128)))
            .collect();
        let stats_long = s2.run(&long, DriveMode::Streamed);
        assert!(stats_long.energy.total() > stats_short.energy.total());
    }

    #[test]
    fn records_kept_when_enabled() {
        let mut s = sim(DramArch::Ddr3);
        s.set_keep_records(true);
        let trace = vec![Request::read(addr(0, 0, 0, 0))];
        let _ = s.run(&trace, DriveMode::Streamed);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let mut s = sim(DramArch::Ddr3);
        let stats = s.run(&[], DriveMode::Streamed);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.mean_latency_cycles(), 0.0);
        assert_eq!(stats.cycles_per_access(), 0.0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn bus_utilization_peaks_on_hit_streams() {
        let mut s = sim(DramArch::Ddr3);
        let trace: Vec<Request> = (0..128).map(|c| Request::read(addr(0, 0, 0, c))).collect();
        let stats = s.run(&trace, DriveMode::Streamed);
        let t = TimingParams::ddr3_1600k();
        let util = stats.bus_utilization(t.t_burst);
        assert!(util > 0.85, "hit stream should saturate the bus: {util}");
        let mut s2 = sim(DramArch::Ddr3);
        let conflicts: Vec<Request> = (0..32).map(|r| Request::read(addr(0, 0, r, 0))).collect();
        let cstats = s2.run(&conflicts, DriveMode::Streamed);
        assert!(cstats.bus_utilization(t.t_burst) < 0.2);
    }

    #[test]
    fn stats_hit_rate_counts_masa_select_hits() {
        let mut s = sim(DramArch::SalpMasa);
        // Open two subarrays, then ping-pong: re-accesses are SASEL hits.
        let trace = vec![
            Request::read(addr(0, 0, 0, 0)),
            Request::read(addr(0, 1, 1, 0)),
            Request::read(addr(0, 0, 0, 1)),
            Request::read(addr(0, 1, 1, 1)),
        ];
        let stats = s.run(&trace, DriveMode::Streamed);
        assert_eq!(stats.outcome_count(RowBufferOutcome::HitOtherSubarray), 2);
        assert_eq!(stats.hit_rate(), 0.5);
    }
}
