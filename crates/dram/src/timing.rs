//! JEDEC DDR3 timing parameters and the SALP architecture variants.
//!
//! All parameters are in memory-clock cycles (DDR3-1600: tCK = 1.25 ns,
//! 800 MHz command clock). The values follow the DDR3-1600K speed grade as
//! used by Ramulator, which the paper's experiments are based on.
//!
//! The SALP architectures (Kim et al., ISCA 2012) do not change the JEDEC
//! parameters themselves; they *re-interpret* which constraints apply across
//! subarrays of the same bank. That re-interpretation is captured by
//! [`DramArch`] and consumed by the timing-constraint table in
//! [`crate::command`].

use core::fmt;

use crate::error::ConfigError;

/// The four DRAM architectures evaluated in the paper.
///
/// # Examples
///
/// ```
/// use drmap_dram::timing::DramArch;
///
/// assert!(DramArch::SalpMasa.exploits_subarrays());
/// assert!(!DramArch::Ddr3.exploits_subarrays());
/// assert_eq!(DramArch::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DramArch {
    /// Commodity DDR3: one row buffer per bank; subarrays invisible.
    Ddr3,
    /// SALP-1: overlaps precharge of one subarray with activation of another.
    Salp1,
    /// SALP-2: SALP-1 plus write-recovery overlap across subarrays.
    Salp2,
    /// SALP-MASA: multiple subarrays activated simultaneously.
    SalpMasa,
}

impl DramArch {
    /// All architectures in the order the paper plots them.
    pub const ALL: [DramArch; 4] = [
        DramArch::Ddr3,
        DramArch::Salp1,
        DramArch::Salp2,
        DramArch::SalpMasa,
    ];

    /// True if the architecture exposes subarray-level parallelism.
    pub fn exploits_subarrays(self) -> bool {
        !matches!(self, DramArch::Ddr3)
    }

    /// True if multiple subarrays of a bank may hold activated rows at once.
    pub fn multiple_activated_subarrays(self) -> bool {
        matches!(self, DramArch::SalpMasa)
    }

    /// Display label used in figures (matches the paper's axis labels).
    pub fn label(self) -> &'static str {
        match self {
            DramArch::Ddr3 => "DDR3",
            DramArch::Salp1 => "SALP-1",
            DramArch::Salp2 => "SALP-2",
            DramArch::SalpMasa => "SALP-MASA",
        }
    }
}

impl fmt::Display for DramArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// DDR3 timing parameters in memory-clock cycles.
///
/// Field names follow JEDEC/Ramulator conventions. Use
/// [`TimingParams::ddr3_1600k`] for the paper's configuration.
///
/// # Examples
///
/// ```
/// use drmap_dram::timing::TimingParams;
///
/// let t = TimingParams::ddr3_1600k();
/// assert_eq!(t.cl + t.t_rcd + t.t_rp, 33); // 11-11-11 speed grade
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingParams {
    /// Clock period in nanoseconds (DDR3-1600: 1.25 ns).
    pub t_ck_ns: f64,
    /// CAS (read) latency.
    pub cl: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// ACT to internal RD/WR delay.
    pub t_rcd: u64,
    /// PRE to ACT delay (same bank).
    pub t_rp: u64,
    /// ACT to PRE minimum (row active time).
    pub t_ras: u64,
    /// ACT to ACT same bank (`t_ras + t_rp`).
    pub t_rc: u64,
    /// ACT to ACT different bank, same rank.
    pub t_rrd: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Burst transfer time (BL8: 4 clocks).
    pub t_burst: u64,
    /// Column-to-column (RD→RD / WR→WR) spacing.
    pub t_ccd: u64,
    /// Write recovery: end of write burst to PRE.
    pub t_wr: u64,
    /// Write-to-read turnaround: end of write burst to RD.
    pub t_wtr: u64,
    /// Read-to-precharge delay.
    pub t_rtp: u64,
    /// Refresh cycle time (2 Gb: 160 ns).
    pub t_rfc: u64,
    /// Average refresh interval (7.8 us).
    pub t_refi: u64,
    /// Subarray-select latency for MASA (designated-subarray switch).
    pub t_sa_sel: u64,
    /// ACT to ACT across different subarrays of one bank under SALP-2/MASA.
    /// SALP serializes only the shared global structures, so this is much
    /// shorter than `t_rc`.
    pub t_rrd_sa: u64,
}

impl TimingParams {
    /// DDR3-1600K (11-11-11) for a 2 Gb x8 device — the paper's Table II
    /// configuration, matching Ramulator's `DDR3_1600K` speed grade.
    pub fn ddr3_1600k() -> Self {
        TimingParams {
            t_ck_ns: 1.25,
            cl: 11,
            cwl: 8,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_rrd: 5,
            t_faw: 24,
            t_burst: 4,
            t_ccd: 4,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_rfc: 128,
            t_refi: 6240,
            t_sa_sel: 1,
            t_rrd_sa: 2,
        }
    }

    /// DDR4-2400R (16-16-16) for a 2 Gb x8 device, as a different
    /// commodity-DRAM generation. The paper argues all commodity DRAMs
    /// share the hit/miss/conflict structure; this preset lets the
    /// benches demonstrate that DRMap's ranking is generation-invariant.
    pub fn ddr4_2400r() -> Self {
        TimingParams {
            t_ck_ns: 0.833,
            cl: 16,
            cwl: 12,
            t_rcd: 16,
            t_rp: 16,
            t_ras: 39,
            t_rc: 55,
            t_rrd: 4,
            t_faw: 26,
            t_burst: 4,
            t_ccd: 4,
            t_wr: 18,
            t_wtr: 9,
            t_rtp: 9,
            t_rfc: 192,
            t_refi: 9363,
            t_sa_sel: 1,
            t_rrd_sa: 2,
        }
    }

    /// LPDDR3-1600 (12-15-15) — a low-power mobile part with slower core
    /// timings at the same data rate, for the generality benches.
    pub fn lpddr3_1600() -> Self {
        TimingParams {
            t_ck_ns: 1.25,
            cl: 12,
            cwl: 6,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 34,
            t_rc: 49,
            t_rrd: 8,
            t_faw: 40,
            t_burst: 4,
            t_ccd: 4,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_rfc: 104,
            t_refi: 3120,
            t_sa_sel: 1,
            t_rrd_sa: 2,
        }
    }

    /// Validate internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `t_rc < t_ras + t_rp`, if any latency that
    /// must be positive is zero, or if the clock period is not positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.t_ck_ns <= 0.0 {
            return Err(ConfigError::new("t_ck_ns must be positive"));
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(ConfigError::new(format!(
                "t_rc ({}) must cover t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            )));
        }
        let positive = [
            ("cl", self.cl),
            ("cwl", self.cwl),
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_burst", self.t_burst),
            ("t_ccd", self.t_ccd),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(ConfigError::zero_field(name));
            }
        }
        Ok(())
    }

    /// Convert a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.t_ck_ns
    }

    /// Convert a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) * 1e-9
    }

    /// Latency in cycles of an isolated row-buffer **hit** read:
    /// `CL + t_burst`.
    pub fn hit_read_cycles(&self) -> u64 {
        self.cl + self.t_burst
    }

    /// Latency in cycles of an isolated row-buffer **miss** read (closed
    /// row): `t_rcd + CL + t_burst`.
    pub fn miss_read_cycles(&self) -> u64 {
        self.t_rcd + self.hit_read_cycles()
    }

    /// Latency in cycles of an isolated row-buffer **conflict** read (wrong
    /// row open): `t_rp + t_rcd + CL + t_burst`.
    pub fn conflict_read_cycles(&self) -> u64 {
        self.t_rp + self.miss_read_cycles()
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr3_1600k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600k_is_11_11_11() {
        let t = TimingParams::ddr3_1600k();
        assert_eq!(t.cl, 11);
        assert_eq!(t.t_rcd, 11);
        assert_eq!(t.t_rp, 11);
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
    }

    #[test]
    fn default_validates() {
        TimingParams::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_inconsistent_trc() {
        let t = TimingParams {
            t_rc: 10,
            ..TimingParams::ddr3_1600k()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_cl() {
        let t = TimingParams {
            cl: 0,
            ..TimingParams::ddr3_1600k()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn isolated_latencies_are_ordered() {
        let t = TimingParams::ddr3_1600k();
        assert!(t.hit_read_cycles() < t.miss_read_cycles());
        assert!(t.miss_read_cycles() < t.conflict_read_cycles());
        assert_eq!(t.hit_read_cycles(), 15);
        assert_eq!(t.miss_read_cycles(), 26);
        assert_eq!(t.conflict_read_cycles(), 37);
    }

    #[test]
    fn ddr4_and_lpddr3_presets_validate() {
        TimingParams::ddr4_2400r().validate().unwrap();
        TimingParams::lpddr3_1600().validate().unwrap();
    }

    #[test]
    fn ddr4_keeps_hit_miss_conflict_structure() {
        // The paper's premise: commodity generations share the structure.
        for t in [TimingParams::ddr4_2400r(), TimingParams::lpddr3_1600()] {
            assert!(t.hit_read_cycles() < t.miss_read_cycles());
            assert!(t.miss_read_cycles() < t.conflict_read_cycles());
        }
    }

    #[test]
    fn ddr4_is_faster_per_cycle_but_similar_in_ns() {
        let d3 = TimingParams::ddr3_1600k();
        let d4 = TimingParams::ddr4_2400r();
        assert!(d4.t_ck_ns < d3.t_ck_ns);
        let d3_ns = d3.cycles_to_ns(d3.conflict_read_cycles());
        let d4_ns = d4.cycles_to_ns(d4.conflict_read_cycles());
        // Core latencies barely move across generations (both ~45 ns).
        assert!((d3_ns - d4_ns).abs() < 10.0, "{d3_ns} vs {d4_ns}");
    }

    #[test]
    fn cycle_conversion() {
        let t = TimingParams::ddr3_1600k();
        assert!((t.cycles_to_ns(4) - 5.0).abs() < 1e-12);
        assert!((t.cycles_to_seconds(800_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arch_labels_match_paper() {
        assert_eq!(DramArch::Ddr3.label(), "DDR3");
        assert_eq!(DramArch::SalpMasa.label(), "SALP-MASA");
    }

    #[test]
    fn arch_capabilities() {
        assert!(!DramArch::Ddr3.exploits_subarrays());
        assert!(DramArch::Salp1.exploits_subarrays());
        assert!(DramArch::Salp2.exploits_subarrays());
        assert!(!DramArch::Salp2.multiple_activated_subarrays());
        assert!(DramArch::SalpMasa.multiple_activated_subarrays());
    }
}
