//! DRAM command set.
//!
//! The command vocabulary covers commodity DDR3 (ACT/PRE/RD/WR/REF) plus the
//! subarray-select command (`SASEL`) that SALP-MASA adds to switch the
//! designated subarray whose local row buffer drives the global bitlines.

use core::fmt;

use crate::address::PhysicalAddress;

/// A DRAM command kind.
///
/// # Examples
///
/// ```
/// use drmap_dram::command::CommandKind;
///
/// assert!(CommandKind::Activate.is_row_command());
/// assert!(CommandKind::Read.is_column_command());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CommandKind {
    /// Open a row: copy it into the (local) row buffer.
    Activate,
    /// Close the open row of one subarray/bank.
    Precharge,
    /// Read one burst from the open row.
    Read,
    /// Write one burst into the open row.
    Write,
    /// Refresh (all banks).
    Refresh,
    /// SALP-MASA: connect a different activated subarray's local row buffer
    /// to the global bitlines.
    SubarraySelect,
}

impl CommandKind {
    /// All command kinds.
    pub const ALL: [CommandKind; 6] = [
        CommandKind::Activate,
        CommandKind::Precharge,
        CommandKind::Read,
        CommandKind::Write,
        CommandKind::Refresh,
        CommandKind::SubarraySelect,
    ];

    /// True for commands that operate on rows (ACT/PRE).
    pub fn is_row_command(self) -> bool {
        matches!(self, CommandKind::Activate | CommandKind::Precharge)
    }

    /// True for commands that transfer data (RD/WR).
    pub fn is_column_command(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }

    /// Mnemonic used in exported command traces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Refresh => "REF",
            CommandKind::SubarraySelect => "SASEL",
        }
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A scheduled command: what, where, and when it was issued.
///
/// Produced by the controller for command-trace export (the "Command Trace"
/// artefact of the paper's Fig. 8 tool flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledCommand {
    /// Cycle at which the command was placed on the command bus.
    pub cycle: u64,
    /// The command kind.
    pub kind: CommandKind,
    /// Target address (row/column meaningful only where applicable).
    pub address: PhysicalAddress,
}

impl fmt::Display for ScheduledCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}  {:<5}  {}", self.cycle, self.kind, self.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_vs_column_commands() {
        assert!(CommandKind::Activate.is_row_command());
        assert!(CommandKind::Precharge.is_row_command());
        assert!(!CommandKind::Read.is_row_command());
        assert!(CommandKind::Read.is_column_command());
        assert!(CommandKind::Write.is_column_command());
        assert!(!CommandKind::Refresh.is_column_command());
        assert!(!CommandKind::SubarraySelect.is_column_command());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in CommandKind::ALL {
            assert!(seen.insert(kind.mnemonic()));
        }
    }

    #[test]
    fn scheduled_command_display() {
        let c = ScheduledCommand {
            cycle: 42,
            kind: CommandKind::Activate,
            address: PhysicalAddress::default(),
        };
        let s = c.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("ACT"));
    }
}
