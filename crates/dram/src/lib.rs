//! # drmap-dram
//!
//! A command-level DRAM timing and energy simulator for DDR3 and the SALP
//! architectures (SALP-1, SALP-2, SALP-MASA) — the substrate of the DRMap
//! (DAC 2020) reproduction, standing in for the paper's Ramulator +
//! VAMPIRE tool flow.
//!
//! The crate is organized bottom-up:
//!
//! * [`geometry`] — device organization (channel → column) and capacity
//!   arithmetic,
//! * [`address`] — physical addresses and flat-index codecs,
//! * [`timing`] — JEDEC DDR3-1600 parameters and architecture variants,
//! * [`command`] / [`state`] — the command set and row-buffer state
//!   machines,
//! * [`controller`] — the timing-constraint scheduling engine,
//! * [`energy`] — the current-based (VAMPIRE-style) energy model,
//! * [`sim`] — the trace-driven simulator facade,
//! * [`trace`] — request-trace builders and command-trace export,
//! * [`profiler`] — per-access-condition measurement (Fig. 1) and the
//!   [`profiler::AccessCostTable`] handed to the analytical DSE.
//!
//! ## Example
//!
//! Measure the isolated latency of a row-buffer conflict on DDR3:
//!
//! ```
//! use drmap_dram::prelude::*;
//!
//! let profiler = Profiler::table_ii()?;
//! let conflict = profiler.fig1_condition(
//!     DramArch::Ddr3,
//!     AccessCondition::RowBufferConflict,
//!     RequestKind::Read,
//! );
//! assert_eq!(conflict.cycles, 37.0); // tRP + tRCD + CL + tBURST
//! # Ok::<(), drmap_dram::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod command;
pub mod controller;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod profiler;
pub mod request;
pub mod sim;
pub mod state;
pub mod timing;
pub mod trace;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::address::{AddressCodec, PhysicalAddress};
    pub use crate::command::{CommandKind, ScheduledCommand};
    pub use crate::controller::{ControllerConfig, MemoryController, RowPolicy, SchedulerKind};
    pub use crate::energy::{EnergyBreakdown, EnergyModel, EnergyParams};
    pub use crate::error::{AddressError, ConfigError};
    pub use crate::geometry::{Geometry, Level};
    pub use crate::profiler::{
        AccessCondition, AccessCost, AccessCostTable, Profiler, TransitionClass,
    };
    pub use crate::request::{DriveMode, Request, RequestKind};
    pub use crate::sim::{DramSimulator, SimStats};
    pub use crate::state::{BankState, RowBufferOutcome};
    pub use crate::timing::{DramArch, TimingParams};
    pub use crate::trace::TraceBuilder;
}
