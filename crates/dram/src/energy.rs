//! Current-based DRAM energy model — the VAMPIRE substitute.
//!
//! VAMPIRE (Ghose et al., SIGMETRICS 2018) showed that DRAM energy is best
//! modelled from measured per-command currents with a data-dependence
//! correction. We implement the same structure from datasheet IDD values
//! (Micron MT41J256M8, 2 Gb x8 DDR3-1600):
//!
//! * activation/precharge pair energy from `IDD0` against the standby floor,
//! * read/write burst energy from `IDD4R`/`IDD4W` with a toggle-rate factor,
//! * background energy split into active standby (`IDD3N`) and precharged
//!   standby (`IDD2N`),
//! * refresh energy from `IDD5B`,
//! * I/O and termination energy per transferred bit,
//! * a small adder for additionally-open subarrays under SALP-MASA.

use crate::command::CommandKind;
use crate::controller::ActivityCounters;
use crate::error::ConfigError;
use crate::geometry::Geometry;
use crate::timing::TimingParams;

/// Datasheet currents (in amperes) and voltages for the energy model.
///
/// # Examples
///
/// ```
/// use drmap_dram::energy::EnergyParams;
///
/// let p = EnergyParams::micron_2gb_x8();
/// assert!(p.idd4r > p.idd3n);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// One-bank activate-precharge current (A).
    pub idd0: f64,
    /// Precharged standby current (A).
    pub idd2n: f64,
    /// Active standby current (A).
    pub idd3n: f64,
    /// Burst read current (A).
    pub idd4r: f64,
    /// Burst write current (A).
    pub idd4w: f64,
    /// Burst refresh current (A).
    pub idd5b: f64,
    /// I/O energy per read bit (J/bit), driver + bus.
    pub read_io_pj_per_bit: f64,
    /// Termination energy per written bit (J/bit).
    pub write_term_pj_per_bit: f64,
    /// Fraction of the burst dynamic energy that is data-independent.
    pub static_burst_fraction: f64,
    /// Average bitline/dataline toggle rate of transferred data (0..=1);
    /// VAMPIRE's data-dependence knob. 0.5 models random data.
    pub toggle_rate: f64,
    /// Extra standby power per additionally-open subarray, as a fraction of
    /// the active-vs-precharged standby delta (SALP-MASA bookkeeping).
    pub extra_subarray_fraction: f64,
    /// Energy per SASEL command (J): latch switch only.
    pub sasel_nj: f64,
}

impl EnergyParams {
    /// Micron MT41J256M8 (2 Gb x8 DDR3-1600) datasheet values.
    pub fn micron_2gb_x8() -> Self {
        EnergyParams {
            vdd: 1.5,
            idd0: 0.095,
            idd2n: 0.042,
            idd3n: 0.067,
            idd4r: 0.180,
            idd4w: 0.185,
            idd5b: 0.215,
            read_io_pj_per_bit: 4.6e-12,
            write_term_pj_per_bit: 2.1e-12,
            static_burst_fraction: 0.6,
            toggle_rate: 0.5,
            extra_subarray_fraction: 0.2,
            sasel_nj: 0.05e-9,
        }
    }

    /// Validate ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a current ordering is inconsistent
    /// (`idd0 <= idd3n`, `idd4r <= idd3n`, ...) or a fraction is outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vdd <= 0.0 {
            return Err(ConfigError::new("vdd must be positive"));
        }
        if self.idd0 <= self.idd3n {
            return Err(ConfigError::new("idd0 must exceed idd3n"));
        }
        if self.idd4r <= self.idd3n || self.idd4w <= self.idd3n {
            return Err(ConfigError::new("idd4r/idd4w must exceed idd3n"));
        }
        if self.idd3n <= self.idd2n {
            return Err(ConfigError::new("idd3n must exceed idd2n"));
        }
        for (name, v) in [
            ("static_burst_fraction", self.static_burst_fraction),
            ("toggle_rate", self.toggle_rate),
            ("extra_subarray_fraction", self.extra_subarray_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::new(format!("{name} must be within [0, 1]")));
            }
        }
        Ok(())
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::micron_2gb_x8()
    }
}

/// Energy consumed by a simulated interval, broken down by source.
/// All values in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyBreakdown {
    /// Activation + precharge pair energy.
    pub act_pre: f64,
    /// Read burst energy (array + I/O).
    pub read: f64,
    /// Write burst energy (array + termination).
    pub write: f64,
    /// Active + precharged standby energy.
    pub background: f64,
    /// Refresh energy.
    pub refresh: f64,
    /// SASEL energy (MASA only).
    pub sasel: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.act_pre + self.read + self.write + self.background + self.refresh + self.sasel
    }
}

/// Computes [`EnergyBreakdown`]s from controller activity.
///
/// # Examples
///
/// ```
/// use drmap_dram::energy::{EnergyModel, EnergyParams};
/// use drmap_dram::geometry::Geometry;
/// use drmap_dram::timing::TimingParams;
///
/// let model = EnergyModel::new(
///     Geometry::ddr3_2gb_x8(),
///     TimingParams::ddr3_1600k(),
///     EnergyParams::micron_2gb_x8(),
/// )?;
/// assert!(model.act_pre_energy() > 0.0);
/// # Ok::<(), drmap_dram::error::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EnergyModel {
    geometry: Geometry,
    timing: TimingParams,
    params: EnergyParams,
}

impl EnergyModel {
    /// Create an energy model for the given device.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if geometry, timing, or energy parameters
    /// fail validation.
    pub fn new(
        geometry: Geometry,
        timing: TimingParams,
        params: EnergyParams,
    ) -> Result<Self, ConfigError> {
        geometry.validate()?;
        timing.validate()?;
        params.validate()?;
        Ok(EnergyModel {
            geometry,
            timing,
            params,
        })
    }

    /// The energy parameter set.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    fn ns(&self, cycles: u64) -> f64 {
        self.timing.cycles_to_ns(cycles) * 1e-9
    }

    /// Energy of one ACT/PRE pair in one chip (J):
    /// `(IDD0·tRC − IDD3N·tRAS − IDD2N·(tRC − tRAS))·VDD`.
    pub fn act_pre_energy(&self) -> f64 {
        let p = &self.params;
        let t = &self.timing;
        (p.idd0 * self.ns(t.t_rc)
            - p.idd3n * self.ns(t.t_ras)
            - p.idd2n * self.ns(t.t_rc - t.t_ras))
            * p.vdd
    }

    /// Array energy of one burst: the datasheet `IDD4` delta corresponds to
    /// random data (toggle rate 0.5); the data-dependent share scales
    /// linearly with the toggle rate, per VAMPIRE's observation.
    fn burst_array_energy(&self, idd4: f64) -> f64 {
        let p = &self.params;
        let base = (idd4 - p.idd3n) * p.vdd * self.ns(self.timing.t_burst);
        let data_dependent = 1.0 - p.static_burst_fraction;
        base * (p.static_burst_fraction + data_dependent * 2.0 * p.toggle_rate)
    }

    /// Bits transferred by one burst in one chip.
    fn burst_bits_per_chip(&self) -> f64 {
        (self.geometry.device_width * self.geometry.burst_length) as f64
    }

    /// Energy of one read burst in one chip (J), including I/O.
    pub fn read_energy(&self) -> f64 {
        self.burst_array_energy(self.params.idd4r)
            + self.params.read_io_pj_per_bit * self.burst_bits_per_chip()
    }

    /// Energy of one write burst in one chip (J), including termination.
    pub fn write_energy(&self) -> f64 {
        self.burst_array_energy(self.params.idd4w)
            + self.params.write_term_pj_per_bit * self.burst_bits_per_chip()
    }

    /// Energy of one refresh in one chip (J).
    pub fn refresh_energy(&self) -> f64 {
        let p = &self.params;
        (p.idd5b - p.idd3n) * p.vdd * self.ns(self.timing.t_rfc)
    }

    /// Active-standby power per chip (W).
    pub fn active_standby_power(&self) -> f64 {
        self.params.idd3n * self.params.vdd
    }

    /// Precharged-standby power per chip (W).
    pub fn precharged_standby_power(&self) -> f64 {
        self.params.idd2n * self.params.vdd
    }

    /// Full breakdown for a simulated interval.
    ///
    /// `makespan_cycles` is the wall-clock length of the interval;
    /// `counters` the finalized controller activity. Chip count scales every
    /// component (chips in a rank operate in lock-step).
    pub fn breakdown(&self, counters: &ActivityCounters, makespan_cycles: u64) -> EnergyBreakdown {
        let chips = self.geometry.chips as f64;
        let p = &self.params;
        let acts = counters.command_count(CommandKind::Activate) as f64;
        let reads = counters.command_count(CommandKind::Read) as f64;
        let writes = counters.command_count(CommandKind::Write) as f64;
        let refs = counters.command_count(CommandKind::Refresh) as f64;
        let sasels = counters.command_count(CommandKind::SubarraySelect) as f64;

        let total_ranks = (self.geometry.channels * self.geometry.ranks) as f64;
        let active = self.ns(counters
            .rank_active_cycles
            .min(makespan_cycles * self.geometry.channels as u64 * self.geometry.ranks as u64));
        let total_time = self.ns(makespan_cycles) * total_ranks;
        let precharged = (total_time - active).max(0.0);
        let mut background =
            active * self.active_standby_power() + precharged * self.precharged_standby_power();

        // Additionally-open subarrays (MASA) leak a fraction of the
        // active-standby delta each.
        let extra_sa_cycles = counters
            .subarray_open_cycles
            .saturating_sub(counters.bank_active_cycles);
        background += self.ns(extra_sa_cycles)
            * (self.active_standby_power() - self.precharged_standby_power())
            * p.extra_subarray_fraction;

        EnergyBreakdown {
            act_pre: acts * self.act_pre_energy() * chips,
            read: reads * self.read_energy() * chips,
            write: writes * self.write_energy() * chips,
            background: background * chips,
            refresh: refs * self.refresh_energy() * chips,
            sasel: sasels * p.sasel_nj * chips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(
            Geometry::ddr3_2gb_x8(),
            TimingParams::ddr3_1600k(),
            EnergyParams::micron_2gb_x8(),
        )
        .unwrap()
    }

    #[test]
    fn act_pre_energy_in_nanojoule_range() {
        let e = model().act_pre_energy();
        assert!(e > 0.5e-9 && e < 10e-9, "got {e}");
    }

    #[test]
    fn read_energy_exceeds_write_array_delta() {
        let m = model();
        assert!(m.read_energy() > 0.0);
        assert!(m.write_energy() > 0.0);
        // Both are sub-conflict scale (< act/pre energy).
        assert!(m.read_energy() < m.act_pre_energy());
    }

    #[test]
    fn refresh_energy_dominates_single_act() {
        let m = model();
        assert!(m.refresh_energy() > m.act_pre_energy());
    }

    #[test]
    fn standby_power_ordering() {
        let m = model();
        assert!(m.active_standby_power() > m.precharged_standby_power());
    }

    #[test]
    fn breakdown_scales_with_commands() {
        let m = model();
        let mut c = ActivityCounters::default();
        c.commands[0] = 10; // ACT
        c.commands[2] = 100; // RD
        let b = m.breakdown(&c, 1000);
        assert!((b.act_pre - 10.0 * m.act_pre_energy()).abs() < 1e-15);
        assert!((b.read - 100.0 * m.read_energy()).abs() < 1e-15);
        assert_eq!(b.write, 0.0);
        assert!(b.background > 0.0);
        assert!(b.total() > b.act_pre);
    }

    #[test]
    fn background_splits_active_and_precharged() {
        let m = model();
        let idle = ActivityCounters::default();
        let all_active = ActivityCounters {
            rank_active_cycles: 1000,
            ..ActivityCounters::default()
        };
        let b_idle = m.breakdown(&idle, 1000);
        let b_active = m.breakdown(&all_active, 1000);
        assert!(b_active.background > b_idle.background);
    }

    #[test]
    fn masa_extra_subarrays_add_background() {
        let m = model();
        let base = ActivityCounters {
            rank_active_cycles: 1000,
            bank_active_cycles: 1000,
            subarray_open_cycles: 1000,
            ..ActivityCounters::default()
        };
        let masa = ActivityCounters {
            subarray_open_cycles: 8000,
            ..base.clone()
        };
        assert!(m.breakdown(&masa, 1000).background > m.breakdown(&base, 1000).background);
    }

    #[test]
    fn toggle_rate_scales_burst_energy() {
        let mut lo = EnergyParams::micron_2gb_x8();
        lo.toggle_rate = 0.0;
        let mut hi = EnergyParams::micron_2gb_x8();
        hi.toggle_rate = 1.0;
        let g = Geometry::ddr3_2gb_x8();
        let t = TimingParams::ddr3_1600k();
        let m_lo = EnergyModel::new(g, t, lo).unwrap();
        let m_hi = EnergyModel::new(g, t, hi).unwrap();
        assert!(m_hi.read_energy() > m_lo.read_energy());
    }

    #[test]
    fn params_validation_catches_bad_orderings() {
        let mut p = EnergyParams::micron_2gb_x8();
        p.idd0 = p.idd3n;
        assert!(p.validate().is_err());
        let mut p2 = EnergyParams::micron_2gb_x8();
        p2.toggle_rate = 1.5;
        assert!(p2.validate().is_err());
    }

    #[test]
    fn chips_scale_every_component() {
        let g8 = Geometry::builder().chips(8).build().unwrap();
        let m1 = model();
        let m8 = EnergyModel::new(
            g8,
            TimingParams::ddr3_1600k(),
            EnergyParams::micron_2gb_x8(),
        )
        .unwrap();
        let mut c = ActivityCounters::default();
        c.commands[0] = 1;
        let b1 = m1.breakdown(&c, 100);
        let b8 = m8.breakdown(&c, 100);
        assert!((b8.act_pre / b1.act_pre - 8.0).abs() < 1e-9);
    }
}
