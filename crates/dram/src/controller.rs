//! The memory controller: command scheduling under JEDEC timing constraints.
//!
//! The controller serves burst requests one at a time (FCFS; FR-FCFS
//! reordering is layered on top in [`crate::sim`]), decomposing each into
//! the command sequence its row-buffer outcome requires (PRE/ACT/SASEL/RD/WR)
//! and computing issue cycles event-driven style against per-subarray,
//! per-bank, per-rank and data-bus timing state.
//!
//! The SALP architectures are expressed purely as different constraint
//! rules, following Kim et al. (ISCA 2012):
//!
//! * **SALP-1** — a precharge to subarray A overlaps with an activation to
//!   subarray B of the same bank (no `tRP` wait across subarrays), but the
//!   new activation must wait for A's column traffic to quiesce
//!   (read-to-precharge / write recovery).
//! * **SALP-2** — additionally removes the quiesce wait: activations to
//!   different subarrays are spaced only by `t_rrd_sa`.
//! * **SALP-MASA** — multiple subarrays stay activated; re-accessing an
//!   already-open subarray costs one `SASEL` cycle instead of a reactivation.

use std::collections::VecDeque;

use crate::address::PhysicalAddress;
use crate::command::{CommandKind, ScheduledCommand};
use crate::error::ConfigError;
use crate::geometry::Geometry;
use crate::request::{Request, RequestKind};
use crate::state::{BankState, RowBufferOutcome};
use crate::timing::{DramArch, TimingParams};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RowPolicy {
    /// Keep rows open after access (Table II: the paper's configuration).
    #[default]
    Open,
    /// Precharge immediately after every access.
    Closed,
    /// Keep rows open, but precharge a bank's rows once it has been idle
    /// for the given number of cycles (the adaptive policy many real
    /// controllers implement).
    Timeout(u64),
}

/// Request scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulerKind {
    /// First-come first-served (Table II: the paper's configuration).
    #[default]
    Fcfs,
    /// First-ready FCFS: row hits within the reorder window go first.
    FrFcfs,
}

/// Controller configuration.
///
/// # Examples
///
/// ```
/// use drmap_dram::controller::ControllerConfig;
/// use drmap_dram::timing::DramArch;
///
/// let cfg = ControllerConfig::new(DramArch::Salp2);
/// assert_eq!(cfg.arch, DramArch::Salp2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControllerConfig {
    /// DRAM architecture (timing-rule set).
    pub arch: DramArch,
    /// Row-buffer policy.
    pub row_policy: RowPolicy,
    /// Scheduling discipline (applied by the simulator driver).
    pub scheduler: SchedulerKind,
    /// Reorder window for FR-FCFS.
    pub reorder_window: usize,
    /// Model periodic refresh.
    pub refresh_enabled: bool,
    /// Record every issued command for trace export.
    pub record_commands: bool,
}

impl ControllerConfig {
    /// Paper defaults (open row, FCFS, refresh off) for `arch`.
    pub fn new(arch: DramArch) -> Self {
        ControllerConfig {
            arch,
            row_policy: RowPolicy::Open,
            scheduler: SchedulerKind::Fcfs,
            reorder_window: 8,
            refresh_enabled: false,
            record_commands: false,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::new(DramArch::Ddr3)
    }
}

/// Outcome of serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceRecord {
    /// Cycle the request became visible to the controller.
    pub arrival: u64,
    /// Cycle the last data beat transferred.
    pub completion: u64,
    /// Row-buffer outcome the request experienced.
    pub outcome: RowBufferOutcome,
    /// Read or write.
    pub kind: RequestKind,
}

impl ServiceRecord {
    /// Request latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completion - self.arrival
    }
}

/// Raw activity counters the energy model consumes.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActivityCounters {
    /// Issued commands per kind, indexed by [`CommandKind::ALL`] order.
    pub commands: [u64; 6],
    /// Requests per row-buffer outcome, indexed by [`RowBufferOutcome::ALL`].
    pub outcomes: [u64; 5],
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Cycles during which each bank had at least one open row, summed over
    /// banks (active-standby time).
    pub bank_active_cycles: u64,
    /// Cycles during which each rank had at least one open bank, summed over
    /// ranks (per-chip active-standby time).
    pub rank_active_cycles: u64,
    /// Open-cycles summed over every subarray (MASA keeps several open).
    pub subarray_open_cycles: u64,
}

impl ActivityCounters {
    /// Count of the given command kind.
    pub fn command_count(&self, kind: CommandKind) -> u64 {
        let idx = CommandKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.commands[idx]
    }

    /// Count of the given outcome.
    pub fn outcome_count(&self, outcome: RowBufferOutcome) -> u64 {
        let idx = RowBufferOutcome::ALL
            .iter()
            .position(|&o| o == outcome)
            .unwrap();
        self.outcomes[idx]
    }

    /// Counter-wise difference `self - earlier` (saturating), used to
    /// attribute activity to one interval of a longer simulation.
    pub fn since(&self, earlier: &ActivityCounters) -> ActivityCounters {
        let mut out = self.clone();
        for (o, e) in out.commands.iter_mut().zip(&earlier.commands) {
            *o = o.saturating_sub(*e);
        }
        for (o, e) in out.outcomes.iter_mut().zip(&earlier.outcomes) {
            *o = o.saturating_sub(*e);
        }
        out.reads = out.reads.saturating_sub(earlier.reads);
        out.writes = out.writes.saturating_sub(earlier.writes);
        out.bank_active_cycles = out
            .bank_active_cycles
            .saturating_sub(earlier.bank_active_cycles);
        out.rank_active_cycles = out
            .rank_active_cycles
            .saturating_sub(earlier.rank_active_cycles);
        out.subarray_open_cycles = out
            .subarray_open_cycles
            .saturating_sub(earlier.subarray_open_cycles);
        out
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SubarrayTiming {
    next_act: u64,
    next_pre: u64,
    col_ready: u64,
    open_since: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankTiming {
    /// Gate on the next ACT anywhere in the bank (DDR3: tRC; SALP: t_rrd_sa).
    next_act: u64,
    /// SALP-1 only: earliest ACT to a *different* subarray (column quiesce).
    new_sa_gate: u64,
    /// SALP-2 only: issue time of the latest deferred victim precharge —
    /// the next overlapped ACT must wait for it (at most two subarrays
    /// activated at a time).
    last_deferred_pre: u64,
    /// Issue time of the most recent command touching this bank (for the
    /// timeout row policy).
    last_use: u64,
    open_count: usize,
    active_since: u64,
}

#[derive(Debug, Clone, Default)]
struct RankTiming {
    next_act: u64,
    act_window: VecDeque<u64>,
    next_rd: u64,
    next_wr: u64,
    open_banks: usize,
    active_since: u64,
}

/// Event-driven DRAM memory controller.
///
/// Construct with [`MemoryController::new`], feed requests through
/// [`MemoryController::serve`], and read activity via
/// [`MemoryController::counters`].
///
/// # Examples
///
/// ```
/// use drmap_dram::controller::{ControllerConfig, MemoryController};
/// use drmap_dram::geometry::Geometry;
/// use drmap_dram::timing::{DramArch, TimingParams};
/// use drmap_dram::request::Request;
/// use drmap_dram::address::PhysicalAddress;
///
/// let mut mc = MemoryController::new(
///     Geometry::ddr3_2gb_x8(),
///     TimingParams::ddr3_1600k(),
///     ControllerConfig::new(DramArch::Ddr3),
/// )?;
/// let rec = mc.serve(Request::read(PhysicalAddress::default()), 0);
/// assert_eq!(rec.latency(), 26); // row-buffer miss: tRCD + CL + tBURST
/// # Ok::<(), drmap_dram::error::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    geometry: Geometry,
    timing: TimingParams,
    config: ControllerConfig,
    banks: Vec<BankState>,
    bank_timing: Vec<BankTiming>,
    sa_timing: Vec<SubarrayTiming>,
    rank_timing: Vec<RankTiming>,
    bus_free: Vec<u64>,
    next_refresh: u64,
    counters: ActivityCounters,
    commands: Vec<ScheduledCommand>,
    last_completion: u64,
}

impl MemoryController {
    /// Create a controller for the given device and architecture.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry or timing parameters are
    /// inconsistent, or if a SALP architecture is configured on a geometry
    /// with a single subarray per bank.
    pub fn new(
        geometry: Geometry,
        timing: TimingParams,
        config: ControllerConfig,
    ) -> Result<Self, ConfigError> {
        geometry.validate()?;
        timing.validate()?;
        if config.arch.exploits_subarrays() && geometry.subarrays < 2 {
            return Err(ConfigError::new(format!(
                "{} requires at least 2 subarrays per bank, geometry has {}",
                config.arch, geometry.subarrays
            )));
        }
        let total_banks = geometry.channels * geometry.ranks * geometry.banks;
        let total_ranks = geometry.channels * geometry.ranks;
        Ok(MemoryController {
            banks: vec![BankState::new(geometry.subarrays); total_banks],
            bank_timing: vec![BankTiming::default(); total_banks],
            sa_timing: vec![SubarrayTiming::default(); total_banks * geometry.subarrays],
            rank_timing: vec![RankTiming::default(); total_ranks],
            bus_free: vec![0; geometry.channels],
            next_refresh: timing.t_refi,
            counters: ActivityCounters::default(),
            commands: Vec::new(),
            last_completion: 0,
            geometry,
            timing,
            config,
        })
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameter set.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Activity counters accumulated so far (open intervals not yet closed
    /// out; see [`MemoryController::finalized_counters`]).
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Counters with still-open row intervals accounted up to the makespan.
    pub fn finalized_counters(&self) -> ActivityCounters {
        let mut c = self.counters.clone();
        let end = self.makespan();
        for (bi, bt) in self.bank_timing.iter().enumerate() {
            if bt.open_count > 0 {
                c.bank_active_cycles += end.saturating_sub(bt.active_since);
            }
            for sa in 0..self.geometry.subarrays {
                if let Some(since) = self.sa_timing[bi * self.geometry.subarrays + sa].open_since {
                    c.subarray_open_cycles += end.saturating_sub(since);
                }
            }
        }
        for rt in &self.rank_timing {
            if rt.open_banks > 0 {
                c.rank_active_cycles += end.saturating_sub(rt.active_since);
            }
        }
        c
    }

    /// Completion cycle of the latest request (the makespan so far).
    pub fn makespan(&self) -> u64 {
        self.last_completion
    }

    /// Commands issued so far (empty unless `record_commands` is set).
    pub fn commands(&self) -> &[ScheduledCommand] {
        &self.commands
    }

    /// Classify what outcome an access would see right now, without
    /// serving it. Used by the FR-FCFS driver.
    pub fn peek_outcome(&self, address: &PhysicalAddress) -> RowBufferOutcome {
        let bi = self.bank_index(address);
        self.banks[bi].classify(self.config.arch, address.subarray, address.row)
    }

    /// Serve one request that becomes visible at cycle `arrival`.
    ///
    /// # Panics
    ///
    /// Panics if the address lies outside the configured geometry.
    pub fn serve(&mut self, request: Request, arrival: u64) -> ServiceRecord {
        let addr = request.address;
        addr.validate(&self.geometry)
            .expect("request address outside geometry");
        if self.config.refresh_enabled {
            self.maybe_refresh(arrival);
        }
        let bi = self.bank_index(&addr);
        if let RowPolicy::Timeout(timeout) = self.config.row_policy {
            self.close_stale_rows(bi, &addr, arrival, timeout);
        }
        let outcome = self.banks[bi].classify(self.config.arch, addr.subarray, addr.row);
        let outcome_idx = RowBufferOutcome::ALL
            .iter()
            .position(|&o| o == outcome)
            .unwrap();
        self.counters.outcomes[outcome_idx] += 1;
        match request.kind {
            RequestKind::Read => self.counters.reads += 1,
            RequestKind::Write => self.counters.writes += 1,
        }

        let mut earliest = arrival;
        match outcome {
            RowBufferOutcome::Hit => {}
            RowBufferOutcome::HitOtherSubarray => {
                let t = self.issue(CommandKind::SubarraySelect, addr, earliest);
                self.banks[bi].select(addr.subarray);
                earliest = t + self.timing.t_sa_sel;
            }
            RowBufferOutcome::Miss => {
                let t_act = self.do_activate(bi, &addr, earliest);
                earliest = t_act;
            }
            RowBufferOutcome::Conflict => {
                // The victim is the open subarray: the target one, except on
                // DDR3 where the bank's single logical row buffer may hold a
                // row of another subarray.
                let victim = match self.config.arch {
                    DramArch::Ddr3 => self.banks[bi].single_open().expect("conflict w/o open").0,
                    _ => addr.subarray,
                };
                let t_pre = self.do_precharge(bi, victim, &addr, earliest);
                let t_act = self.do_activate(bi, &addr, t_pre + self.timing.t_rp);
                earliest = t_act;
            }
            RowBufferOutcome::ConflictOtherSubarray => {
                let victim = self.banks[bi].single_open().expect("conflict w/o open").0;
                match self.config.arch {
                    DramArch::Salp1 => {
                        // SALP-1: the PRE must still be issued first (one
                        // activated subarray at a time), but the new ACT
                        // does not wait tRP — only the command-bus slot.
                        let t_pre = self.do_precharge(bi, victim, &addr, earliest);
                        let t_act = self.do_activate(bi, &addr, t_pre + 1);
                        earliest = t_act;
                    }
                    DramArch::Salp2 => {
                        // SALP-2: the ACT may be issued *before* the victim
                        // finishes (write-recovery overlap; two subarrays
                        // transiently activated). A third activation must
                        // wait for the previous deferred precharge.
                        let gate = self.bank_timing[bi].last_deferred_pre;
                        let t_act =
                            self.do_activate(bi, &addr, earliest.max(gate.saturating_add(1)));
                        let t_pre = self.do_precharge(bi, victim, &addr, t_act + 1);
                        self.bank_timing[bi].last_deferred_pre = t_pre;
                        earliest = t_act;
                    }
                    DramArch::Ddr3 | DramArch::SalpMasa => {
                        unreachable!("ConflictOtherSubarray only classified under SALP-1/2")
                    }
                }
            }
        }

        let completion = self.do_column(bi, &addr, request.kind, earliest);
        if self.config.row_policy == RowPolicy::Closed {
            self.do_precharge(bi, addr.subarray, &addr, completion);
        }
        self.last_completion = self.last_completion.max(completion);
        ServiceRecord {
            arrival,
            completion,
            outcome,
            kind: request.kind,
        }
    }

    fn bank_index(&self, addr: &PhysicalAddress) -> usize {
        (addr.channel * self.geometry.ranks + addr.rank) * self.geometry.banks + addr.bank
    }

    fn rank_index(&self, addr: &PhysicalAddress) -> usize {
        addr.channel * self.geometry.ranks + addr.rank
    }

    fn sa_index(&self, bi: usize, sa: usize) -> usize {
        bi * self.geometry.subarrays + sa
    }

    fn issue(&mut self, kind: CommandKind, address: PhysicalAddress, earliest: u64) -> u64 {
        let ch = address.channel;
        let t = earliest.max(self.bus_free[ch]);
        self.bus_free[ch] = t + 1;
        let idx = CommandKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.counters.commands[idx] += 1;
        if self.config.record_commands {
            self.commands.push(ScheduledCommand {
                cycle: t,
                kind,
                address,
            });
        }
        t
    }

    fn do_precharge(
        &mut self,
        bi: usize,
        victim_sa: usize,
        addr: &PhysicalAddress,
        earliest: u64,
    ) -> u64 {
        let si = self.sa_index(bi, victim_sa);
        let e = earliest.max(self.sa_timing[si].next_pre);
        let cmd_addr = PhysicalAddress {
            subarray: victim_sa,
            ..*addr
        };
        let t = self.issue(CommandKind::Precharge, cmd_addr, e);
        self.bank_timing[bi].last_use = self.bank_timing[bi].last_use.max(t);
        let timing = self.timing;
        let sa_t = &mut self.sa_timing[si];
        sa_t.next_act = sa_t.next_act.max(t + timing.t_rp);
        if let Some(since) = sa_t.open_since.take() {
            self.counters.subarray_open_cycles += t.saturating_sub(since);
        }
        self.banks[bi].precharge(victim_sa);
        let ri = self.rank_index(addr);
        let bt = &mut self.bank_timing[bi];
        if bt.open_count > 0 {
            bt.open_count -= 1;
            if bt.open_count == 0 {
                let bank_since = bt.active_since;
                self.counters.bank_active_cycles += t.saturating_sub(bank_since);
                let rt = &mut self.rank_timing[ri];
                rt.open_banks -= 1;
                if rt.open_banks == 0 {
                    let rank_since = rt.active_since;
                    self.counters.rank_active_cycles += t.saturating_sub(rank_since);
                }
            }
        }
        t
    }

    fn do_activate(&mut self, bi: usize, addr: &PhysicalAddress, earliest: u64) -> u64 {
        let si = self.sa_index(bi, addr.subarray);
        let ri = self.rank_index(addr);
        let timing = self.timing;
        let arch = self.config.arch;
        let mut e = earliest
            .max(self.sa_timing[si].next_act)
            .max(self.bank_timing[bi].next_act)
            .max(self.rank_timing[ri].next_act);
        if arch == DramArch::Salp1 {
            e = e.max(self.bank_timing[bi].new_sa_gate);
        }
        // Four-activate window.
        if self.rank_timing[ri].act_window.len() >= 4 {
            let oldest = self.rank_timing[ri].act_window[self.rank_timing[ri].act_window.len() - 4];
            e = e.max(oldest + timing.t_faw);
        }
        let t = self.issue(CommandKind::Activate, *addr, e);

        let sa_t = &mut self.sa_timing[si];
        sa_t.next_act = t + timing.t_rc;
        sa_t.next_pre = sa_t.next_pre.max(t + timing.t_ras);
        sa_t.col_ready = t + timing.t_rcd;
        debug_assert!(sa_t.open_since.is_none(), "activating an open subarray");
        sa_t.open_since = Some(t);

        let bank_gate = match arch {
            DramArch::Ddr3 => timing.t_rc,
            _ => timing.t_rrd_sa,
        };
        let bt = &mut self.bank_timing[bi];
        bt.next_act = bt.next_act.max(t + bank_gate);
        bt.last_use = bt.last_use.max(t);
        let bank_was_idle = bt.open_count == 0;
        if bank_was_idle {
            bt.active_since = t;
        }
        bt.open_count += 1;

        let rt = &mut self.rank_timing[ri];
        if bank_was_idle {
            if rt.open_banks == 0 {
                rt.active_since = t;
            }
            rt.open_banks += 1;
        }
        rt.next_act = rt.next_act.max(t + timing.t_rrd);
        rt.act_window.push_back(t);
        if rt.act_window.len() > 8 {
            rt.act_window.pop_front();
        }

        self.banks[bi].activate(addr.subarray, addr.row);
        t
    }

    fn do_column(
        &mut self,
        bi: usize,
        addr: &PhysicalAddress,
        kind: RequestKind,
        earliest: u64,
    ) -> u64 {
        let si = self.sa_index(bi, addr.subarray);
        let ri = self.rank_index(addr);
        let timing = self.timing;
        let bus_gate = match kind {
            RequestKind::Read => self.rank_timing[ri].next_rd,
            RequestKind::Write => self.rank_timing[ri].next_wr,
        };
        let e = earliest.max(self.sa_timing[si].col_ready).max(bus_gate);
        let cmd = match kind {
            RequestKind::Read => CommandKind::Read,
            RequestKind::Write => CommandKind::Write,
        };
        let t = self.issue(cmd, *addr, e);

        let rt = &mut self.rank_timing[ri];
        let completion;
        let quiesce;
        match kind {
            RequestKind::Read => {
                rt.next_rd = rt.next_rd.max(t + timing.t_ccd);
                let rtw = (timing.cl + timing.t_burst + 2).saturating_sub(timing.cwl);
                rt.next_wr = rt.next_wr.max(t + rtw);
                quiesce = t + timing.t_rtp;
                completion = t + timing.cl + timing.t_burst;
            }
            RequestKind::Write => {
                rt.next_wr = rt.next_wr.max(t + timing.t_ccd);
                rt.next_rd = rt
                    .next_rd
                    .max(t + timing.cwl + timing.t_burst + timing.t_wtr);
                quiesce = t + timing.cwl + timing.t_burst + timing.t_wr;
                completion = t + timing.cwl + timing.t_burst;
            }
        }
        let sa_t = &mut self.sa_timing[si];
        sa_t.next_pre = sa_t.next_pre.max(quiesce);
        let bt = &mut self.bank_timing[bi];
        bt.new_sa_gate = bt.new_sa_gate.max(quiesce);
        bt.last_use = bt.last_use.max(completion);
        completion
    }

    /// Timeout row policy: if the bank has sat idle past the deadline,
    /// precharge its open rows (at the deadline, not at `now`).
    fn close_stale_rows(&mut self, bi: usize, addr: &PhysicalAddress, now: u64, timeout: u64) {
        let deadline = self.bank_timing[bi].last_use.saturating_add(timeout);
        if now <= deadline || self.bank_timing[bi].open_count == 0 {
            return;
        }
        for sa in 0..self.geometry.subarrays {
            if self.banks[bi].subarray(sa).open_row().is_some() {
                self.do_precharge(bi, sa, addr, deadline);
            }
        }
    }

    fn maybe_refresh(&mut self, now: u64) {
        while now >= self.next_refresh {
            let start = self.next_refresh;
            // Close every bank, then hold all activations for tRFC.
            for bi in 0..self.banks.len() {
                for sa in 0..self.geometry.subarrays {
                    if self.banks[bi].subarray(sa).open_row().is_some() {
                        self.do_precharge(bi, sa, &self.addr_of_bank(bi), start);
                    }
                }
            }
            let ref_addr = PhysicalAddress::default();
            let t = self.issue(CommandKind::Refresh, ref_addr, start);
            for sa_t in &mut self.sa_timing {
                sa_t.next_act = sa_t.next_act.max(t + self.timing.t_rfc);
            }
            self.next_refresh += self.timing.t_refi;
        }
    }

    fn addr_of_bank(&self, bi: usize) -> PhysicalAddress {
        let banks = self.geometry.banks;
        let ranks = self.geometry.ranks;
        let bank = bi % banks;
        let rank = (bi / banks) % ranks;
        let channel = bi / (banks * ranks);
        PhysicalAddress {
            channel,
            rank,
            bank,
            ..PhysicalAddress::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc(arch: DramArch) -> MemoryController {
        let geometry = match arch {
            DramArch::Ddr3 => Geometry::ddr3_2gb_x8(),
            _ => Geometry::salp_2gb_x8(),
        };
        MemoryController::new(
            geometry,
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(arch),
        )
        .unwrap()
    }

    fn addr(bank: usize, subarray: usize, row: usize, column: usize) -> PhysicalAddress {
        PhysicalAddress {
            channel: 0,
            rank: 0,
            bank,
            subarray,
            row,
            column,
        }
    }

    #[test]
    fn salp_requires_subarrays() {
        let err = MemoryController::new(
            Geometry::ddr3_2gb_x8(),
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(DramArch::Salp1),
        )
        .unwrap_err();
        assert!(err.to_string().contains("subarrays"));
    }

    #[test]
    fn first_access_is_miss_with_trcd_cl_burst() {
        let mut c = mc(DramArch::Ddr3);
        let rec = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        assert_eq!(rec.outcome, RowBufferOutcome::Miss);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(rec.latency(), t.t_rcd + t.cl + t.t_burst);
    }

    #[test]
    fn second_access_same_row_is_hit() {
        let mut c = mc(DramArch::Ddr3);
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 0, 0, 1)), r0.completion);
        assert_eq!(r1.outcome, RowBufferOutcome::Hit);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(r1.latency(), t.cl + t.t_burst);
    }

    #[test]
    fn conflict_pays_trp_trcd_cl_burst() {
        let mut c = mc(DramArch::Ddr3);
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        // Wait long enough that tRAS/tRC are satisfied.
        let late = r0.completion + 100;
        let r1 = c.serve(Request::read(addr(0, 0, 1, 0)), late);
        assert_eq!(r1.outcome, RowBufferOutcome::Conflict);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(r1.latency(), t.t_rp + t.t_rcd + t.cl + t.t_burst);
    }

    #[test]
    fn ddr3_cross_subarray_is_plain_conflict() {
        let geometry = Geometry::salp_2gb_x8();
        let mut c = MemoryController::new(
            geometry,
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(DramArch::Ddr3),
        )
        .unwrap();
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 3, 0, 0)), r0.completion + 100);
        assert_eq!(r1.outcome, RowBufferOutcome::Conflict);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(r1.latency(), t.t_rp + t.t_rcd + t.cl + t.t_burst);
    }

    #[test]
    fn salp1_cross_subarray_skips_trp() {
        let mut c = mc(DramArch::Salp1);
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 3, 7, 0)), r0.completion + 100);
        assert_eq!(r1.outcome, RowBufferOutcome::ConflictOtherSubarray);
        let t = TimingParams::ddr3_1600k();
        // PRE overlapped: only the command-bus slot (1 cycle) precedes ACT.
        assert_eq!(r1.latency(), 1 + t.t_rcd + t.cl + t.t_burst);
    }

    #[test]
    fn salp1_gate_delays_back_to_back_cross_subarray() {
        let mut c1 = mc(DramArch::Salp1);
        let mut c2 = mc(DramArch::Salp2);
        // Stream two requests to different subarrays back-to-back: SALP-2
        // may activate before the first access quiesces, SALP-1 may not.
        let r0a = c1.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1a = c1.serve(Request::read(addr(0, 1, 1, 0)), 0);
        let r0b = c2.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1b = c2.serve(Request::read(addr(0, 1, 1, 0)), 0);
        assert_eq!(r0a.completion, r0b.completion);
        assert!(
            r1a.completion > r1b.completion,
            "SALP-2 ({}) should beat SALP-1 ({})",
            r1b.completion,
            r1a.completion
        );
        let _ = (r0a, r0b);
    }

    #[test]
    fn masa_reaccess_open_subarray_is_sasel_hit() {
        let mut c = mc(DramArch::SalpMasa);
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 1, 1, 0)), r0.completion);
        assert_eq!(r1.outcome, RowBufferOutcome::Miss);
        // Both subarrays stay open under MASA; going back costs one SASEL.
        let r2 = c.serve(Request::read(addr(0, 0, 0, 1)), r1.completion);
        assert_eq!(r2.outcome, RowBufferOutcome::HitOtherSubarray);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(r2.latency(), t.t_sa_sel + t.cl + t.t_burst);
    }

    #[test]
    fn bank_parallel_activations_overlap() {
        let mut c = mc(DramArch::Ddr3);
        // Stream to two banks: the second ACT waits only tRRD, so the
        // second completion is much earlier than two serial misses.
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(1, 0, 0, 0)), 0);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(r0.completion, t.t_rcd + t.cl + t.t_burst);
        assert!(r1.completion < 2 * r0.completion);
    }

    #[test]
    fn same_bank_reactivation_waits_trc() {
        let mut c = mc(DramArch::Ddr3);
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 0, 1, 0)), 0);
        let t = TimingParams::ddr3_1600k();
        // Second ACT to the same bank cannot issue before tRC.
        assert!(r1.completion >= t.t_rc + t.t_rcd + t.cl + t.t_burst);
        let _ = r0;
    }

    #[test]
    fn closed_row_policy_makes_misses() {
        let geometry = Geometry::ddr3_2gb_x8();
        let config = ControllerConfig {
            row_policy: RowPolicy::Closed,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut c = MemoryController::new(geometry, TimingParams::ddr3_1600k(), config).unwrap();
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 0, 0, 1)), r0.completion + 100);
        // Same row, but the closed-row policy precharged it.
        assert_eq!(r1.outcome, RowBufferOutcome::Miss);
    }

    #[test]
    fn write_then_read_turnaround() {
        let mut c = mc(DramArch::Ddr3);
        let w = c.serve(Request::write(addr(0, 0, 0, 0)), 0);
        let r = c.serve(Request::read(addr(0, 0, 0, 1)), w.completion);
        assert_eq!(r.outcome, RowBufferOutcome::Hit);
        let t = TimingParams::ddr3_1600k();
        // The read waits the write-to-read turnaround beyond a plain hit.
        assert!(r.latency() >= t.cl + t.t_burst);
    }

    #[test]
    fn counters_track_commands_and_outcomes() {
        let mut c = mc(DramArch::Ddr3);
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let r1 = c.serve(Request::read(addr(0, 0, 0, 1)), r0.completion);
        let _ = c.serve(Request::write(addr(0, 0, 5, 0)), r1.completion + 100);
        let k = c.counters();
        assert_eq!(k.command_count(CommandKind::Activate), 2);
        assert_eq!(k.command_count(CommandKind::Precharge), 1);
        assert_eq!(k.command_count(CommandKind::Read), 2);
        assert_eq!(k.command_count(CommandKind::Write), 1);
        assert_eq!(k.outcome_count(RowBufferOutcome::Miss), 1);
        assert_eq!(k.outcome_count(RowBufferOutcome::Hit), 1);
        assert_eq!(k.outcome_count(RowBufferOutcome::Conflict), 1);
        assert_eq!(k.reads, 2);
        assert_eq!(k.writes, 1);
    }

    #[test]
    fn finalized_counters_close_open_intervals() {
        let mut c = mc(DramArch::Ddr3);
        let r = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let k = c.finalized_counters();
        // The row opened at tRCD-act time and stays open to the makespan.
        assert!(k.bank_active_cycles > 0);
        assert!(k.bank_active_cycles <= r.completion);
        assert_eq!(k.subarray_open_cycles, k.bank_active_cycles);
    }

    #[test]
    fn refresh_issues_ref_commands() {
        let geometry = Geometry::ddr3_2gb_x8();
        let config = ControllerConfig {
            refresh_enabled: true,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut c = MemoryController::new(geometry, TimingParams::ddr3_1600k(), config).unwrap();
        let t = TimingParams::ddr3_1600k();
        let _ = c.serve(Request::read(addr(0, 0, 0, 0)), 2 * t.t_refi + 1);
        assert_eq!(c.counters().command_count(CommandKind::Refresh), 2);
    }

    #[test]
    fn command_recording() {
        let config = ControllerConfig {
            record_commands: true,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut c =
            MemoryController::new(Geometry::ddr3_2gb_x8(), TimingParams::ddr3_1600k(), config)
                .unwrap();
        let _ = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        let kinds: Vec<_> = c.commands().iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![CommandKind::Activate, CommandKind::Read]);
    }

    #[test]
    fn faw_limits_activation_bursts() {
        let mut c = mc(DramArch::Ddr3);
        // Five misses to five banks back-to-back: the fifth ACT must wait
        // for the four-activate window.
        let mut acts = Vec::new();
        for b in 0..5 {
            let _ = c.serve(Request::read(addr(b, 0, 0, 0)), 0);
            acts.push(b);
        }
        let t = TimingParams::ddr3_1600k();
        // Activations: 0, >=tRRD, ... the 5th at >= first + tFAW.
        // We can't read issue times without recording; re-run with recording.
        let config = ControllerConfig {
            record_commands: true,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut c2 =
            MemoryController::new(Geometry::ddr3_2gb_x8(), TimingParams::ddr3_1600k(), config)
                .unwrap();
        for b in 0..5 {
            let _ = c2.serve(Request::read(addr(b, 0, 0, 0)), 0);
        }
        let act_times: Vec<u64> = c2
            .commands()
            .iter()
            .filter(|sc| sc.kind == CommandKind::Activate)
            .map(|sc| sc.cycle)
            .collect();
        assert_eq!(act_times.len(), 5);
        assert!(act_times[4] >= act_times[0] + t.t_faw);
    }

    #[test]
    fn timeout_policy_closes_idle_banks() {
        let config = ControllerConfig {
            row_policy: RowPolicy::Timeout(100),
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut c =
            MemoryController::new(Geometry::ddr3_2gb_x8(), TimingParams::ddr3_1600k(), config)
                .unwrap();
        let r0 = c.serve(Request::read(addr(0, 0, 0, 0)), 0);
        // Within the timeout: still a hit.
        let r1 = c.serve(Request::read(addr(0, 0, 0, 1)), r0.completion + 50);
        assert_eq!(r1.outcome, RowBufferOutcome::Hit);
        // Past the timeout: the bank was precharged, so a miss (not a
        // conflict) even for a different row.
        let r2 = c.serve(Request::read(addr(0, 0, 9, 0)), r1.completion + 500);
        assert_eq!(r2.outcome, RowBufferOutcome::Miss);
        let t = TimingParams::ddr3_1600k();
        assert_eq!(r2.latency(), t.t_rcd + t.cl + t.t_burst);
    }

    #[test]
    fn timeout_policy_never_slower_than_closed_on_conflicts() {
        let mk = |policy| {
            let config = ControllerConfig {
                row_policy: policy,
                ..ControllerConfig::new(DramArch::Ddr3)
            };
            MemoryController::new(Geometry::ddr3_2gb_x8(), TimingParams::ddr3_1600k(), config)
                .unwrap()
        };
        // Spaced accesses to alternating rows: timeout behaves like
        // closed-row (misses), open-row pays conflicts.
        let mut open = mk(RowPolicy::Open);
        let mut timeout = mk(RowPolicy::Timeout(50));
        let mut t_open = 0;
        let mut t_timeout = 0;
        let mut arrival = 0;
        for i in 0..8 {
            let a = addr(0, 0, i % 2, 0);
            t_open += open.serve(Request::read(a), arrival).latency();
            t_timeout += timeout.serve(Request::read(a), arrival).latency();
            arrival += 500;
        }
        assert!(t_timeout < t_open, "timeout {t_timeout} vs open {t_open}");
    }

    #[test]
    fn channels_are_independent() {
        let geometry = Geometry::builder().channels(2).build().unwrap();
        let mut c = MemoryController::new(
            geometry,
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(DramArch::Ddr3),
        )
        .unwrap();
        // Same bank/row coordinates on two channels: no interference at
        // all — both are plain misses with identical latency, and the
        // second channel's command bus is free.
        let a0 = addr(0, 0, 0, 0);
        let a1 = PhysicalAddress { channel: 1, ..a0 };
        let r0 = c.serve(Request::read(a0), 0);
        let r1 = c.serve(Request::read(a1), 0);
        assert_eq!(r0.completion, r1.completion);
        assert_eq!(r0.outcome, RowBufferOutcome::Miss);
        assert_eq!(r1.outcome, RowBufferOutcome::Miss);
    }

    #[test]
    fn ranks_share_channel_but_not_row_state() {
        let geometry = Geometry::builder().ranks(2).build().unwrap();
        let mut c = MemoryController::new(
            geometry,
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(DramArch::Ddr3),
        )
        .unwrap();
        let a0 = addr(0, 0, 0, 0);
        let a1 = PhysicalAddress {
            rank: 1,
            row: 7,
            ..a0
        };
        let r0 = c.serve(Request::read(a0), 0);
        // Different rank: independent bank state (a miss, not a conflict),
        // but the shared command bus serializes issue slots.
        let r1 = c.serve(Request::read(a1), 0);
        assert_eq!(r1.outcome, RowBufferOutcome::Miss);
        assert!(r1.completion > r0.completion);
        assert!(r1.completion < r0.completion + TimingParams::ddr3_1600k().t_rc);
    }

    #[test]
    fn multi_channel_refresh_targets_every_bank() {
        let geometry = Geometry::builder().channels(2).ranks(2).build().unwrap();
        let config = ControllerConfig {
            refresh_enabled: true,
            record_commands: true,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut c = MemoryController::new(geometry, TimingParams::ddr3_1600k(), config).unwrap();
        let t = TimingParams::ddr3_1600k();
        // Open a row in the last bank of the last rank of channel 1, then
        // trigger a refresh: the precharge bookkeeping must hit the right
        // flattened bank index (a wrong addr_of_bank would panic or leak
        // an open interval).
        let far = PhysicalAddress {
            channel: 1,
            rank: 1,
            bank: 7,
            ..PhysicalAddress::default()
        };
        let r = c.serve(Request::read(far), 0);
        let _ = c.serve(Request::read(addr(0, 0, 0, 1)), t.t_refi + 10);
        assert!(c.counters().command_count(CommandKind::Refresh) >= 1);
        // The refresh precharged the far bank: a revisit misses again.
        let r2 = c.serve(
            Request::read(PhysicalAddress { column: 2, ..far }),
            2 * t.t_refi,
        );
        assert_eq!(r2.outcome, RowBufferOutcome::Miss);
        let _ = r;
    }

    #[test]
    fn addr_of_bank_roundtrips_flat_index() {
        let geometry = Geometry::builder().channels(2).ranks(2).build().unwrap();
        let c = MemoryController::new(
            geometry,
            TimingParams::ddr3_1600k(),
            ControllerConfig::new(DramArch::Ddr3),
        )
        .unwrap();
        for ch in 0..2 {
            for ra in 0..2 {
                for ba in 0..8 {
                    let a = PhysicalAddress {
                        channel: ch,
                        rank: ra,
                        bank: ba,
                        ..PhysicalAddress::default()
                    };
                    let bi = c.bank_index(&a);
                    let back = c.addr_of_bank(bi);
                    assert_eq!((back.channel, back.rank, back.bank), (ch, ra, ba));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn serve_panics_on_bad_address() {
        let mut c = mc(DramArch::Ddr3);
        let bad = PhysicalAddress {
            bank: 99,
            ..PhysicalAddress::default()
        };
        let _ = c.serve(Request::read(bad), 0);
    }
}
