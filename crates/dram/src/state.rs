//! Row-buffer state machines for banks and subarrays.
//!
//! Commodity DDR3 logically has one row buffer per bank; physically each
//! subarray has a local row buffer (Fig. 4(b) of the paper), and the SALP
//! architectures expose them. [`BankState`] models the superset: per-subarray
//! open rows plus a *designated* subarray whose buffer drives the global
//! bitlines (relevant for SALP-MASA).

use crate::timing::DramArch;

/// How a single access interacts with the row-buffer state — the five
/// conditions of Fig. 1 plus the MASA designated-subarray switch.
///
/// # Examples
///
/// ```
/// use drmap_dram::state::RowBufferOutcome;
///
/// assert!(RowBufferOutcome::Hit.is_hit());
/// assert!(!RowBufferOutcome::Conflict.is_hit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RowBufferOutcome {
    /// Requested row already open and selected: RD/WR only.
    Hit,
    /// Requested row open in a non-designated subarray (MASA): SASEL + RD/WR.
    HitOtherSubarray,
    /// No open row in the way: ACT + RD/WR.
    Miss,
    /// A different row of the *same subarray* (or same bank on DDR3) is
    /// open: PRE + ACT + RD/WR.
    Conflict,
    /// A different subarray of the same bank holds an open row and the
    /// architecture can overlap its precharge: the SALP fast path.
    ConflictOtherSubarray,
}

impl RowBufferOutcome {
    /// All outcomes.
    pub const ALL: [RowBufferOutcome; 5] = [
        RowBufferOutcome::Hit,
        RowBufferOutcome::HitOtherSubarray,
        RowBufferOutcome::Miss,
        RowBufferOutcome::Conflict,
        RowBufferOutcome::ConflictOtherSubarray,
    ];

    /// True for outcomes that need no activation.
    pub fn is_hit(self) -> bool {
        matches!(
            self,
            RowBufferOutcome::Hit | RowBufferOutcome::HitOtherSubarray
        )
    }

    /// True for outcomes that require an activation.
    pub fn needs_activate(self) -> bool {
        !self.is_hit()
    }

    /// Short label for statistics output.
    pub fn label(self) -> &'static str {
        match self {
            RowBufferOutcome::Hit => "hit",
            RowBufferOutcome::HitOtherSubarray => "hit-other-sa",
            RowBufferOutcome::Miss => "miss",
            RowBufferOutcome::Conflict => "conflict",
            RowBufferOutcome::ConflictOtherSubarray => "conflict-other-sa",
        }
    }
}

/// State of one subarray's local row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SubarrayState {
    /// No row latched.
    #[default]
    Closed,
    /// The given row (index within the subarray) is latched.
    Open(usize),
}

impl SubarrayState {
    /// The open row, if any.
    pub fn open_row(self) -> Option<usize> {
        match self {
            SubarrayState::Closed => None,
            SubarrayState::Open(r) => Some(r),
        }
    }
}

/// Row-buffer state of one bank: per-subarray local buffers plus the
/// designated subarray connected to the global bitlines.
///
/// The same type models all four architectures; the architecture only
/// changes *how many* subarrays may be open at once and how an access is
/// classified (see [`BankState::classify`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BankState {
    subarrays: Vec<SubarrayState>,
    designated: usize,
}

impl BankState {
    /// A bank with `subarrays` closed subarrays.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays == 0`.
    pub fn new(subarrays: usize) -> Self {
        assert!(subarrays > 0, "a bank needs at least one subarray");
        BankState {
            subarrays: vec![SubarrayState::Closed; subarrays],
            designated: 0,
        }
    }

    /// Number of subarrays.
    pub fn subarray_count(&self) -> usize {
        self.subarrays.len()
    }

    /// State of subarray `sa`.
    ///
    /// # Panics
    ///
    /// Panics if `sa` is out of range.
    pub fn subarray(&self, sa: usize) -> SubarrayState {
        self.subarrays[sa]
    }

    /// The subarray currently connected to the global bitlines.
    pub fn designated(&self) -> usize {
        self.designated
    }

    /// Number of subarrays with an open row.
    pub fn open_count(&self) -> usize {
        self.subarrays
            .iter()
            .filter(|s| s.open_row().is_some())
            .count()
    }

    /// The single open `(subarray, row)` if exactly one is open.
    pub fn single_open(&self) -> Option<(usize, usize)> {
        let mut found = None;
        for (sa, s) in self.subarrays.iter().enumerate() {
            if let Some(row) = s.open_row() {
                if found.is_some() {
                    return None;
                }
                found = Some((sa, row));
            }
        }
        found
    }

    /// Classify an access to `(sa, row)` under `arch` against the current
    /// state. Does not mutate state.
    ///
    /// On DDR3 the subarray level is invisible: any open row anywhere in the
    /// bank conflicts unless it is exactly the requested `(sa, row)`.
    pub fn classify(&self, arch: DramArch, sa: usize, row: usize) -> RowBufferOutcome {
        let target = self.subarrays[sa];
        match arch {
            DramArch::Ddr3 => match self.single_open() {
                None => RowBufferOutcome::Miss,
                Some((osa, orow)) if osa == sa && orow == row => RowBufferOutcome::Hit,
                Some(_) => RowBufferOutcome::Conflict,
            },
            DramArch::Salp1 | DramArch::Salp2 => match target.open_row() {
                Some(orow) if orow == row => RowBufferOutcome::Hit,
                Some(_) => RowBufferOutcome::Conflict,
                None => {
                    if self
                        .subarrays
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != sa && s.open_row().is_some())
                    {
                        RowBufferOutcome::ConflictOtherSubarray
                    } else {
                        RowBufferOutcome::Miss
                    }
                }
            },
            DramArch::SalpMasa => match target.open_row() {
                Some(orow) if orow == row => {
                    if self.designated == sa {
                        RowBufferOutcome::Hit
                    } else {
                        RowBufferOutcome::HitOtherSubarray
                    }
                }
                Some(_) => RowBufferOutcome::Conflict,
                None => RowBufferOutcome::Miss,
            },
        }
    }

    /// Record an activation of `(sa, row)` and make `sa` the designated
    /// subarray.
    ///
    /// Never closes other subarrays: the controller issues precharges
    /// explicitly (on non-MASA architectures it does so before — or, for
    /// SALP-2's overlapped activation, immediately after — the activation).
    pub fn activate(&mut self, sa: usize, row: usize) {
        self.subarrays[sa] = SubarrayState::Open(row);
        self.designated = sa;
    }

    /// Record a precharge of subarray `sa`.
    pub fn precharge(&mut self, sa: usize) {
        self.subarrays[sa] = SubarrayState::Closed;
    }

    /// Record a precharge of every subarray.
    pub fn precharge_all(&mut self) {
        for s in &mut self.subarrays {
            *s = SubarrayState::Closed;
        }
    }

    /// Record a designated-subarray switch (MASA SASEL).
    ///
    /// # Panics
    ///
    /// Panics if `sa` is out of range.
    pub fn select(&mut self, sa: usize) {
        assert!(sa < self.subarrays.len(), "subarray out of range");
        self.designated = sa;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_closed() {
        let b = BankState::new(8);
        assert_eq!(b.open_count(), 0);
        assert_eq!(b.single_open(), None);
    }

    #[test]
    #[should_panic(expected = "at least one subarray")]
    fn zero_subarrays_panics() {
        let _ = BankState::new(0);
    }

    #[test]
    fn ddr3_hit_miss_conflict() {
        let mut b = BankState::new(8);
        assert_eq!(b.classify(DramArch::Ddr3, 0, 5), RowBufferOutcome::Miss);
        b.activate(0, 5);
        assert_eq!(b.classify(DramArch::Ddr3, 0, 5), RowBufferOutcome::Hit);
        assert_eq!(b.classify(DramArch::Ddr3, 0, 6), RowBufferOutcome::Conflict);
        // DDR3 sees a different subarray's row as a plain conflict.
        assert_eq!(b.classify(DramArch::Ddr3, 3, 5), RowBufferOutcome::Conflict);
    }

    #[test]
    fn salp1_cross_subarray_is_fast_conflict() {
        let mut b = BankState::new(8);
        b.activate(0, 5);
        assert_eq!(
            b.classify(DramArch::Salp1, 3, 7),
            RowBufferOutcome::ConflictOtherSubarray
        );
        assert_eq!(
            b.classify(DramArch::Salp1, 0, 7),
            RowBufferOutcome::Conflict
        );
        assert_eq!(b.classify(DramArch::Salp1, 0, 5), RowBufferOutcome::Hit);
    }

    #[test]
    fn activation_never_closes_others() {
        let mut b = BankState::new(8);
        b.activate(0, 5);
        b.activate(3, 7);
        assert_eq!(b.open_count(), 2);
        assert_eq!(b.designated(), 3);
        assert_eq!(b.single_open(), None);
        // The controller closes explicitly.
        b.precharge(0);
        assert_eq!(b.single_open(), Some((3, 7)));
    }

    #[test]
    fn masa_hit_other_subarray_needs_select() {
        let mut b = BankState::new(8);
        b.activate(0, 5);
        b.activate(3, 7);
        // Designated is now 3; row 5 is still open in subarray 0.
        assert_eq!(
            b.classify(DramArch::SalpMasa, 0, 5),
            RowBufferOutcome::HitOtherSubarray
        );
        b.select(0);
        assert_eq!(b.classify(DramArch::SalpMasa, 0, 5), RowBufferOutcome::Hit);
    }

    #[test]
    fn masa_same_subarray_conflict() {
        let mut b = BankState::new(8);
        b.activate(0, 5);
        assert_eq!(
            b.classify(DramArch::SalpMasa, 0, 9),
            RowBufferOutcome::Conflict
        );
        // A closed subarray is a plain miss even with other rows open.
        assert_eq!(b.classify(DramArch::SalpMasa, 2, 1), RowBufferOutcome::Miss);
    }

    #[test]
    fn precharge_clears() {
        let mut b = BankState::new(4);
        b.activate(0, 5);
        b.activate(1, 6);
        b.precharge(0);
        assert_eq!(b.open_count(), 1);
        b.precharge_all();
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn outcome_predicates() {
        assert!(RowBufferOutcome::HitOtherSubarray.is_hit());
        assert!(RowBufferOutcome::Miss.needs_activate());
        assert!(RowBufferOutcome::ConflictOtherSubarray.needs_activate());
        for o in RowBufferOutcome::ALL {
            assert_eq!(o.is_hit(), !o.needs_activate());
        }
    }
}
