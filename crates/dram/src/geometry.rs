//! DRAM device geometry: the physical organization of a DRAM system from
//! channel down to column, mirroring Fig. 4 of the DRMap paper.
//!
//! A [`Geometry`] describes how many of each organizational level exist and
//! how wide the data path is. All capacity arithmetic (bits per row, bytes
//! per burst, total device capacity) lives here so that the rest of the
//! crate never recomputes it ad hoc.

use core::fmt;

use crate::error::ConfigError;

/// The six organizational levels of a DRAM system, ordered from the top of
/// the hierarchy (channel) to the bottom (column).
///
/// `Subarray` sits between `Bank` and `Row`: commodity DDR3 exposes no
/// subarray-level commands, but the physical bank is still built from
/// subarrays (Fig. 4(b) of the paper), and the SALP architectures make the
/// level architecturally visible.
///
/// # Examples
///
/// ```
/// use drmap_dram::geometry::Level;
///
/// assert!(Level::Channel < Level::Column);
/// assert_eq!(Level::ALL.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Level {
    /// Independent command/data bus.
    Channel,
    /// A set of chips operating in lock-step on one channel.
    Rank,
    /// One DRAM die; chips in a rank share addresses and split the data bus.
    Chip,
    /// Independently schedulable array with (logically) one row buffer.
    Bank,
    /// Physical sub-structure of a bank with a local row buffer.
    Subarray,
    /// A row of cells; activation copies one row into the row buffer.
    Row,
    /// Column within an open row; the unit a RD/WR burst addresses.
    Column,
}

impl Level {
    /// All levels, outermost first.
    pub const ALL: [Level; 6] = [
        Level::Channel,
        Level::Rank,
        Level::Bank,
        Level::Subarray,
        Level::Row,
        Level::Column,
    ];

    /// Short lowercase name used in trace output and figure labels.
    ///
    /// # Examples
    ///
    /// ```
    /// use drmap_dram::geometry::Level;
    /// assert_eq!(Level::Subarray.name(), "subarray");
    /// ```
    pub fn name(self) -> &'static str {
        match self {
            Level::Channel => "channel",
            Level::Rank => "rank",
            Level::Chip => "chip",
            Level::Bank => "bank",
            Level::Subarray => "subarray",
            Level::Row => "row",
            Level::Column => "column",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical organization of a DRAM system.
///
/// The default constructors provide the configurations of Table II of the
/// paper (DDR3-1600 2 Gb x8 and the SALP equivalent with 8 subarrays per
/// bank). Arbitrary geometries can be built with [`Geometry::builder`].
///
/// # Examples
///
/// ```
/// use drmap_dram::geometry::Geometry;
///
/// let g = Geometry::ddr3_2gb_x8();
/// assert_eq!(g.banks, 8);
/// assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024 / 8); // 2 Gb chip
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Geometry {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Chips per rank (lock-step; each contributes `device_width` bits).
    pub chips: usize,
    /// Banks per chip.
    pub banks: usize,
    /// Subarrays per bank (1 collapses the subarray level).
    pub subarrays: usize,
    /// Rows per bank (split evenly across subarrays).
    pub rows: usize,
    /// Columns per row *per chip*, each `device_width` bits wide.
    pub columns: usize,
    /// Data pins per chip (x4/x8/x16).
    pub device_width: usize,
    /// Burst length (DDR3: 8).
    pub burst_length: usize,
}

impl Geometry {
    /// DDR3-1600 2 Gb x8 with the subarray level collapsed (commodity view),
    /// per Table II: 1 channel, 1 rank, 1 chip, 8 banks.
    ///
    /// A 2 Gb x8 die has 8 banks × 32768 rows × 1024 columns × 8 bits.
    pub fn ddr3_2gb_x8() -> Self {
        Geometry {
            channels: 1,
            ranks: 1,
            chips: 1,
            banks: 8,
            subarrays: 1,
            rows: 32_768,
            columns: 1024,
            device_width: 8,
            burst_length: 8,
        }
    }

    /// SALP 2 Gb x8 with 8 subarrays per bank, per Table II.
    pub fn salp_2gb_x8() -> Self {
        Geometry {
            subarrays: 8,
            ..Self::ddr3_2gb_x8()
        }
    }

    /// Start building a custom geometry from the DDR3 2 Gb x8 baseline.
    ///
    /// # Examples
    ///
    /// ```
    /// use drmap_dram::geometry::Geometry;
    ///
    /// let g = Geometry::builder().channels(2).subarrays(16).build()?;
    /// assert_eq!(g.channels, 2);
    /// # Ok::<(), drmap_dram::error::ConfigError>(())
    /// ```
    pub fn builder() -> GeometryBuilder {
        GeometryBuilder {
            inner: Self::ddr3_2gb_x8(),
        }
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any level count is zero, if `rows` is not
    /// divisible by `subarrays`, or if `columns` is not divisible by
    /// `burst_length`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fields = [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("chips", self.chips),
            ("banks", self.banks),
            ("subarrays", self.subarrays),
            ("rows", self.rows),
            ("columns", self.columns),
            ("device_width", self.device_width),
            ("burst_length", self.burst_length),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(ConfigError::zero_field(name));
            }
        }
        if !self.rows.is_multiple_of(self.subarrays) {
            return Err(ConfigError::new(format!(
                "rows ({}) must be divisible by subarrays ({})",
                self.rows, self.subarrays
            )));
        }
        if !self.columns.is_multiple_of(self.burst_length) {
            return Err(ConfigError::new(format!(
                "columns ({}) must be divisible by burst_length ({})",
                self.columns, self.burst_length
            )));
        }
        Ok(())
    }

    /// Rows in each subarray (`rows / subarrays`).
    pub fn rows_per_subarray(&self) -> usize {
        self.rows / self.subarrays
    }

    /// Bytes one row stores in one chip (`columns * device_width / 8`).
    pub fn row_bytes_per_chip(&self) -> usize {
        self.columns * self.device_width / 8
    }

    /// Bytes one row stores across all chips of a rank.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes_per_chip() * self.chips
    }

    /// Bytes transferred by one burst across all chips of a rank
    /// (`chips * device_width * burst_length / 8`).
    pub fn burst_bytes(&self) -> usize {
        self.chips * self.device_width * self.burst_length / 8
    }

    /// Number of burst-sized slots in one row of one bank (per rank).
    pub fn bursts_per_row(&self) -> usize {
        self.columns / self.burst_length
    }

    /// Total capacity in bytes across all channels/ranks/chips.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks as u64
            * self.chips as u64
            * self.banks as u64
            * self.rows as u64
            * self.columns as u64
            * self.device_width as u64
            / 8
    }

    /// Number of burst-sized mapping slots in the whole system.
    pub fn total_burst_slots(&self) -> u64 {
        self.capacity_bytes() / self.burst_bytes() as u64
    }

    /// Size (element count) of the given level.
    ///
    /// `Row` returns rows **per subarray**, matching the nesting used by the
    /// mapping loops (subarray encloses row).
    pub fn level_size(&self, level: Level) -> usize {
        match level {
            Level::Channel => self.channels,
            Level::Rank => self.ranks,
            Level::Chip => self.chips,
            Level::Bank => self.banks,
            Level::Subarray => self.subarrays,
            Level::Row => self.rows_per_subarray(),
            Level::Column => self.bursts_per_row(),
        }
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::ddr3_2gb_x8()
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}rank x {}chip x {}bank x {}sa x {}row x {}col (x{}, BL{})",
            self.channels,
            self.ranks,
            self.chips,
            self.banks,
            self.subarrays,
            self.rows,
            self.columns,
            self.device_width,
            self.burst_length
        )
    }
}

/// Builder for [`Geometry`], starting from the DDR3 2 Gb x8 baseline.
///
/// Terminal method [`GeometryBuilder::build`] validates the result.
#[derive(Debug, Clone)]
pub struct GeometryBuilder {
    inner: Geometry,
}

macro_rules! builder_setter {
    ($(#[$doc:meta] $name:ident),+ $(,)?) => {
        $(
            #[$doc]
            pub fn $name(mut self, v: usize) -> Self {
                self.inner.$name = v;
                self
            }
        )+
    };
}

impl GeometryBuilder {
    builder_setter!(
        /// Set the number of channels.
        channels,
        /// Set ranks per channel.
        ranks,
        /// Set chips per rank.
        chips,
        /// Set banks per chip.
        banks,
        /// Set subarrays per bank.
        subarrays,
        /// Set rows per bank.
        rows,
        /// Set columns per row per chip.
        columns,
        /// Set data pins per chip.
        device_width,
        /// Set the burst length.
        burst_length,
    );

    /// Validate and produce the [`Geometry`].
    ///
    /// # Errors
    ///
    /// Propagates [`Geometry::validate`] failures.
    pub fn build(self) -> Result<Geometry, ConfigError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_capacity_is_2gbit() {
        let g = Geometry::ddr3_2gb_x8();
        assert_eq!(g.capacity_bytes(), 256 * 1024 * 1024);
    }

    #[test]
    fn salp_matches_table_ii() {
        let g = Geometry::salp_2gb_x8();
        assert_eq!(g.channels, 1);
        assert_eq!(g.ranks, 1);
        assert_eq!(g.chips, 1);
        assert_eq!(g.banks, 8);
        assert_eq!(g.subarrays, 8);
        assert_eq!(g.capacity_bytes(), 256 * 1024 * 1024);
    }

    #[test]
    fn row_and_burst_arithmetic() {
        let g = Geometry::ddr3_2gb_x8();
        assert_eq!(g.row_bytes_per_chip(), 1024);
        assert_eq!(g.row_bytes(), 1024);
        assert_eq!(g.burst_bytes(), 8);
        assert_eq!(g.bursts_per_row(), 128);
    }

    #[test]
    fn rows_per_subarray_divides_evenly() {
        let g = Geometry::salp_2gb_x8();
        assert_eq!(g.rows_per_subarray(), 4096);
        assert_eq!(g.rows_per_subarray() * g.subarrays, g.rows);
    }

    #[test]
    fn builder_overrides_and_validates() {
        let g = Geometry::builder()
            .channels(2)
            .subarrays(16)
            .build()
            .unwrap();
        assert_eq!(g.channels, 2);
        assert_eq!(g.subarrays, 16);
        assert_eq!(g.rows_per_subarray(), 2048);
    }

    #[test]
    fn builder_rejects_zero_banks() {
        let err = Geometry::builder().banks(0).build().unwrap_err();
        assert!(err.to_string().contains("banks"));
    }

    #[test]
    fn builder_rejects_indivisible_rows() {
        let err = Geometry::builder().subarrays(7).build().unwrap_err();
        assert!(err.to_string().contains("divisible"));
    }

    #[test]
    fn level_sizes_match_fields() {
        let g = Geometry::salp_2gb_x8();
        assert_eq!(g.level_size(Level::Channel), 1);
        assert_eq!(g.level_size(Level::Bank), 8);
        assert_eq!(g.level_size(Level::Subarray), 8);
        assert_eq!(g.level_size(Level::Row), 4096);
        assert_eq!(g.level_size(Level::Column), 128);
    }

    #[test]
    fn total_burst_slots_consistent() {
        let g = Geometry::ddr3_2gb_x8();
        let by_levels = (g.channels
            * g.ranks
            * g.banks
            * g.subarrays
            * g.rows_per_subarray()
            * g.bursts_per_row()) as u64;
        assert_eq!(g.total_burst_slots(), by_levels);
    }

    #[test]
    fn display_mentions_all_levels() {
        let s = Geometry::salp_2gb_x8().to_string();
        assert!(s.contains("8bank"));
        assert!(s.contains("8sa"));
        assert!(s.contains("BL8"));
    }

    #[test]
    fn level_ordering_outermost_first() {
        assert!(Level::Channel < Level::Rank);
        assert!(Level::Bank < Level::Subarray);
        assert!(Level::Row < Level::Column);
    }
}
