//! Request-trace construction and command-trace export.
//!
//! The paper's tool flow (Fig. 8) passes DRAM request traces into
//! Ramulator and exports command traces for the energy model. This module
//! provides the same artefacts: builders for structured access patterns
//! and a text exporter for scheduled commands.

use crate::address::PhysicalAddress;
use crate::command::ScheduledCommand;
use crate::request::{Request, RequestKind};

/// Builder for structured request traces used by the profiler and tests.
///
/// # Examples
///
/// ```
/// use drmap_dram::trace::TraceBuilder;
///
/// let trace = TraceBuilder::new().sequential_columns(0, 0, 0, 16).build();
/// assert_eq!(trace.len(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    requests: Vec<Request>,
    kind: Option<RequestKind>,
}

impl TraceBuilder {
    /// An empty read-trace builder.
    pub fn new() -> Self {
        TraceBuilder {
            requests: Vec::new(),
            kind: None,
        }
    }

    /// Emit writes instead of reads for subsequently added patterns.
    pub fn writes(mut self) -> Self {
        self.kind = Some(RequestKind::Write);
        self
    }

    fn push(&mut self, address: PhysicalAddress) {
        let kind = self.kind.unwrap_or(RequestKind::Read);
        self.requests.push(Request { address, kind });
    }

    /// `n` accesses to consecutive columns of one row (row-buffer hits
    /// after the first access).
    pub fn sequential_columns(
        mut self,
        bank: usize,
        subarray: usize,
        row: usize,
        n: usize,
    ) -> Self {
        for c in 0..n {
            self.push(PhysicalAddress {
                bank,
                subarray,
                row,
                column: c,
                ..PhysicalAddress::default()
            });
        }
        self
    }

    /// `n` accesses to distinct rows of one subarray (row-buffer conflicts
    /// after the first access).
    pub fn row_conflicts(mut self, bank: usize, subarray: usize, n: usize) -> Self {
        for r in 0..n {
            self.push(PhysicalAddress {
                bank,
                subarray,
                row: r,
                ..PhysicalAddress::default()
            });
        }
        self
    }

    /// `rounds` sweeps over `subarrays` subarrays of one bank, each access
    /// touching that subarray's fixed row (the subarray-level-parallelism
    /// pattern of Fig. 1).
    pub fn subarray_sweep(mut self, bank: usize, subarrays: usize, rounds: usize) -> Self {
        for round in 0..rounds {
            for sa in 0..subarrays {
                self.push(PhysicalAddress {
                    bank,
                    subarray: sa,
                    row: sa + 1,
                    column: round,
                    ..PhysicalAddress::default()
                });
            }
        }
        self
    }

    /// `rounds` sweeps over `banks` banks, each access touching that bank's
    /// fixed row (the bank-level-parallelism pattern of Fig. 1).
    pub fn bank_sweep(mut self, banks: usize, rounds: usize) -> Self {
        for round in 0..rounds {
            for b in 0..banks {
                self.push(PhysicalAddress {
                    bank: b,
                    row: b + 1,
                    column: round,
                    ..PhysicalAddress::default()
                });
            }
        }
        self
    }

    /// `n` accesses to distinct rows, each in a fresh precharged bank/row
    /// position so every access is a pure row-buffer miss under a closed
    /// starting state (used with one access per subarray/bank).
    pub fn isolated_misses(mut self, banks: usize, n: usize) -> Self {
        for i in 0..n {
            self.push(PhysicalAddress {
                bank: i % banks,
                row: i,
                ..PhysicalAddress::default()
            });
        }
        self
    }

    /// Append one explicit request.
    pub fn request(mut self, request: Request) -> Self {
        self.requests.push(request);
        self
    }

    /// Finish and return the trace.
    pub fn build(self) -> Vec<Request> {
        self.requests
    }
}

/// Render a command trace in a Ramulator-like text format:
/// one `cycle mnemonic address` line per command.
///
/// # Examples
///
/// ```
/// use drmap_dram::trace::format_command_trace;
/// use drmap_dram::command::{CommandKind, ScheduledCommand};
/// use drmap_dram::address::PhysicalAddress;
///
/// let cmds = [ScheduledCommand { cycle: 3, kind: CommandKind::Activate, address: PhysicalAddress::default() }];
/// let text = format_command_trace(&cmds);
/// assert!(text.contains("ACT"));
/// ```
pub fn format_command_trace(commands: &[ScheduledCommand]) -> String {
    let mut out = String::with_capacity(commands.len() * 48);
    for c in commands {
        out.push_str(&c.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandKind;

    #[test]
    fn sequential_columns_walk_columns() {
        let t = TraceBuilder::new().sequential_columns(2, 1, 5, 4).build();
        assert_eq!(t.len(), 4);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.address.column, i);
            assert_eq!(r.address.bank, 2);
            assert_eq!(r.address.subarray, 1);
            assert_eq!(r.address.row, 5);
            assert_eq!(r.kind, RequestKind::Read);
        }
    }

    #[test]
    fn writes_switch_kind() {
        let t = TraceBuilder::new().writes().row_conflicts(0, 0, 3).build();
        assert!(t.iter().all(|r| r.kind == RequestKind::Write));
    }

    #[test]
    fn subarray_sweep_visits_each_subarray_per_round() {
        let t = TraceBuilder::new().subarray_sweep(0, 8, 2).build();
        assert_eq!(t.len(), 16);
        assert_eq!(t[0].address.subarray, 0);
        assert_eq!(t[7].address.subarray, 7);
        assert_eq!(t[8].address.subarray, 0);
        // Rows differ per subarray so DDR3 sees them as conflicting rows.
        assert_ne!(t[0].address.row, t[1].address.row);
        // Columns advance per round so repeats are not duplicate requests.
        assert_ne!(t[0].address.column, t[8].address.column);
    }

    #[test]
    fn bank_sweep_visits_each_bank_per_round() {
        let t = TraceBuilder::new().bank_sweep(8, 3).build();
        assert_eq!(t.len(), 24);
        assert_eq!(t[0].address.bank, 0);
        assert_eq!(t[15].address.bank, 7);
    }

    #[test]
    fn isolated_misses_spread_rows() {
        let t = TraceBuilder::new().isolated_misses(8, 16).build();
        assert_eq!(t.len(), 16);
        assert_eq!(t[0].address.bank, t[8].address.bank);
        assert_ne!(t[0].address.row, t[8].address.row);
    }

    #[test]
    fn command_trace_format_one_line_per_command() {
        let cmds = vec![
            ScheduledCommand {
                cycle: 0,
                kind: CommandKind::Activate,
                address: PhysicalAddress::default(),
            },
            ScheduledCommand {
                cycle: 11,
                kind: CommandKind::Read,
                address: PhysicalAddress::default(),
            },
        ];
        let text = format_command_trace(&cmds);
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().contains("RD"));
    }
}
