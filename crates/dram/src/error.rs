//! Error types for the DRAM model.

use core::fmt;

/// An invalid configuration was supplied (geometry, timing, or controller).
///
/// # Examples
///
/// ```
/// use drmap_dram::geometry::Geometry;
///
/// let err = Geometry::builder().rows(0).build().unwrap_err();
/// assert!(err.to_string().contains("rows"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Create a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    pub(crate) fn zero_field(name: &str) -> Self {
        ConfigError::new(format!("{name} must be non-zero"))
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// An address lies outside the device described by a [`Geometry`].
///
/// [`Geometry`]: crate::geometry::Geometry
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressError {
    message: String,
}

impl AddressError {
    /// Create an address error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        AddressError {
            message: message.into(),
        }
    }
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.message)
    }
}

impl std::error::Error for AddressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("banks must be non-zero");
        assert_eq!(
            e.to_string(),
            "invalid configuration: banks must be non-zero"
        );
    }

    #[test]
    fn address_error_display() {
        let e = AddressError::new("row 99999 out of range");
        assert!(e.to_string().starts_with("invalid address"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<AddressError>();
    }
}
