//! Memory requests and request traces.
//!
//! A [`Request`] is one burst-sized read or write at a physical address —
//! the granularity at which the controller schedules commands and the
//! mapping policies lay out tile data.

use core::fmt;

use crate::address::PhysicalAddress;

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RequestKind {
    /// Read one burst.
    Read,
    /// Write one burst.
    Write,
}

impl RequestKind {
    /// Both request kinds.
    pub const ALL: [RequestKind; 2] = [RequestKind::Read, RequestKind::Write];

    /// Lowercase label ("read" / "write").
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Read => "read",
            RequestKind::Write => "write",
        }
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One burst-sized memory request.
///
/// # Examples
///
/// ```
/// use drmap_dram::request::{Request, RequestKind};
/// use drmap_dram::address::PhysicalAddress;
///
/// let r = Request::read(PhysicalAddress::default());
/// assert_eq!(r.kind, RequestKind::Read);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Request {
    /// Target location (one burst slot).
    pub address: PhysicalAddress,
    /// Read or write.
    pub kind: RequestKind,
}

impl Request {
    /// A read request at `address`.
    pub fn read(address: PhysicalAddress) -> Self {
        Request {
            address,
            kind: RequestKind::Read,
        }
    }

    /// A write request at `address`.
    pub fn write(address: PhysicalAddress) -> Self {
        Request {
            address,
            kind: RequestKind::Write,
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<5} {}", self.kind, self.address)
    }
}

/// How requests arrive at the controller.
///
/// The access-condition profiler uses [`DriveMode::Dependent`] for the
/// isolated hit/miss/conflict latencies of Fig. 1 and
/// [`DriveMode::Streamed`] for the parallelism conditions, matching how a
/// CNN accelerator's DMA engine streams tile data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DriveMode {
    /// Each request is issued only after the previous one completed
    /// (isolated per-access latency).
    Dependent,
    /// Each request arrives the given number of cycles after the previous
    /// completion — fully isolated accesses with all bank timings (tRAS,
    /// tRC) quiesced. Used for the Fig. 1 hit/miss/conflict measurements.
    Spaced(u64),
    /// All requests are available immediately and served back-to-back
    /// (steady-state streaming, overlap allowed).
    #[default]
    Streamed,
}

impl DriveMode {
    /// True for modes where each request waits for the previous completion.
    pub fn is_serialized(self) -> bool {
        matches!(self, DriveMode::Dependent | DriveMode::Spaced(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = PhysicalAddress::default();
        assert_eq!(Request::read(a).kind, RequestKind::Read);
        assert_eq!(Request::write(a).kind, RequestKind::Write);
    }

    #[test]
    fn display_contains_kind_and_address() {
        let r = Request::write(PhysicalAddress {
            bank: 2,
            ..PhysicalAddress::default()
        });
        let s = r.to_string();
        assert!(s.contains("write"));
        assert!(s.contains("ba2"));
    }

    #[test]
    fn default_drive_mode_is_streamed() {
        assert_eq!(DriveMode::default(), DriveMode::Streamed);
    }
}
