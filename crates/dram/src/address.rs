//! Physical DRAM addresses and linear-address codecs.
//!
//! A [`PhysicalAddress`] names one burst-sized slot in the device:
//! `(channel, rank, bank, subarray, row, column)`. Chips within a rank
//! operate in lock-step and therefore share the address; the chip level is
//! not part of the address tuple.
//!
//! [`AddressCodec`] converts between a flat burst index (what a mapping
//! policy produces) and a physical address, for any interleaving order.

use core::fmt;

use crate::error::AddressError;
use crate::geometry::{Geometry, Level};

/// One burst-sized physical DRAM location.
///
/// `row` is the row index *within the subarray* (see
/// [`Geometry::level_size`]); the absolute row within the bank is
/// `subarray * rows_per_subarray + row`.
///
/// # Examples
///
/// ```
/// use drmap_dram::address::PhysicalAddress;
///
/// let a = PhysicalAddress { channel: 0, rank: 0, bank: 3, subarray: 1, row: 42, column: 7 };
/// assert_eq!(a.bank, 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysicalAddress {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Row index within the subarray.
    pub row: usize,
    /// Column index in burst units within the row.
    pub column: usize,
}

impl PhysicalAddress {
    /// Coordinate of this address at `level`.
    ///
    /// # Examples
    ///
    /// ```
    /// use drmap_dram::address::PhysicalAddress;
    /// use drmap_dram::geometry::Level;
    ///
    /// let a = PhysicalAddress { bank: 5, ..PhysicalAddress::default() };
    /// assert_eq!(a.coordinate(Level::Bank), 5);
    /// ```
    pub fn coordinate(&self, level: Level) -> usize {
        match level {
            Level::Channel => self.channel,
            Level::Rank => self.rank,
            Level::Chip => 0,
            Level::Bank => self.bank,
            Level::Subarray => self.subarray,
            Level::Row => self.row,
            Level::Column => self.column,
        }
    }

    /// Absolute row within the bank (folds the subarray in).
    pub fn absolute_row(&self, geometry: &Geometry) -> usize {
        self.subarray * geometry.rows_per_subarray() + self.row
    }

    /// Check that every coordinate is within `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] naming the first out-of-range level.
    pub fn validate(&self, geometry: &Geometry) -> Result<(), AddressError> {
        for level in Level::ALL {
            let size = geometry.level_size(level);
            let coord = self.coordinate(level);
            if coord >= size {
                return Err(AddressError::new(format!(
                    "{} {} out of range (size {})",
                    level, coord, size
                )));
            }
        }
        Ok(())
    }

    /// True if `self` and `other` target the same bank of the same rank and
    /// channel (the granularity at which row-buffer state is shared on
    /// commodity DDR3).
    pub fn same_bank(&self, other: &PhysicalAddress) -> bool {
        self.channel == other.channel && self.rank == other.rank && self.bank == other.bank
    }

    /// True if `self` and `other` target the same subarray of the same bank.
    pub fn same_subarray(&self, other: &PhysicalAddress) -> bool {
        self.same_bank(other) && self.subarray == other.subarray
    }
}

impl fmt::Display for PhysicalAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{} ra{} ba{} sa{} ro{} co{}",
            self.channel, self.rank, self.bank, self.subarray, self.row, self.column
        )
    }
}

/// Converts between flat burst indices and [`PhysicalAddress`]es for a
/// given interleaving order.
///
/// The `order` lists levels from **innermost (fastest-varying) to
/// outermost**; consecutive flat indices differ first in `order[0]`.
/// This is exactly the loop nest of Fig. 6 in the paper, generalized.
///
/// # Examples
///
/// ```
/// use drmap_dram::address::AddressCodec;
/// use drmap_dram::geometry::{Geometry, Level};
///
/// // Fig. 6 order: column fastest, then bank, subarray, row, rank, channel.
/// let codec = AddressCodec::new(
///     Geometry::salp_2gb_x8(),
///     vec![Level::Column, Level::Bank, Level::Subarray, Level::Row, Level::Rank, Level::Channel],
/// )?;
/// let a = codec.decode(129)?;
/// assert_eq!(a.column, 1); // 129 = 1*128 + 1 -> bank 1, column 1
/// assert_eq!(a.bank, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressCodec {
    geometry: Geometry,
    order: Vec<Level>,
    /// Radix of each order position (same order as `order`).
    radices: Vec<usize>,
}

impl AddressCodec {
    /// Create a codec for `geometry` with the given innermost-to-outermost
    /// level order.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if `order` is not a permutation of the six
    /// addressable levels (chip excluded), or if `geometry` is invalid.
    pub fn new(geometry: Geometry, order: Vec<Level>) -> Result<Self, AddressError> {
        geometry
            .validate()
            .map_err(|e| AddressError::new(e.to_string()))?;
        if order.len() != Level::ALL.len() {
            return Err(AddressError::new(format!(
                "order must list all {} levels, got {}",
                Level::ALL.len(),
                order.len()
            )));
        }
        for level in Level::ALL {
            if !order.contains(&level) {
                return Err(AddressError::new(format!("order missing level {level}")));
            }
        }
        let radices = order.iter().map(|&l| geometry.level_size(l)).collect();
        Ok(AddressCodec {
            geometry,
            order,
            radices,
        })
    }

    /// The device geometry this codec addresses.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The innermost-to-outermost level order.
    pub fn order(&self) -> &[Level] {
        &self.order
    }

    /// Total number of addressable burst slots.
    pub fn slots(&self) -> u64 {
        self.geometry.total_burst_slots()
    }

    /// Decode a flat burst index into a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if `index >= self.slots()`.
    pub fn decode(&self, index: u64) -> Result<PhysicalAddress, AddressError> {
        if index >= self.slots() {
            return Err(AddressError::new(format!(
                "burst index {} out of range (capacity {})",
                index,
                self.slots()
            )));
        }
        let mut addr = PhysicalAddress::default();
        let mut rest = index;
        for (level, &radix) in self.order.iter().zip(&self.radices) {
            let digit = (rest % radix as u64) as usize;
            rest /= radix as u64;
            match level {
                Level::Channel => addr.channel = digit,
                Level::Rank => addr.rank = digit,
                Level::Chip => {}
                Level::Bank => addr.bank = digit,
                Level::Subarray => addr.subarray = digit,
                Level::Row => addr.row = digit,
                Level::Column => addr.column = digit,
            }
        }
        Ok(addr)
    }

    /// Encode a physical address back into its flat burst index.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if any coordinate is out of range.
    pub fn encode(&self, addr: &PhysicalAddress) -> Result<u64, AddressError> {
        addr.validate(&self.geometry)?;
        let mut index = 0u64;
        for (level, &radix) in self.order.iter().zip(&self.radices).rev() {
            index = index * radix as u64 + addr.coordinate(*level) as u64;
        }
        Ok(index)
    }

    /// The level at which two consecutive flat indices `i` and `i+1`
    /// diverge: the outermost level whose digit changes.
    ///
    /// This is the classification primitive behind Eq. 2/3 of the paper: a
    /// `Level::Column` divergence is a row-buffer hit, `Level::Row` a
    /// row-buffer conflict, and `Bank`/`Subarray` divergences exploit the
    /// corresponding parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if `index + 1 >= self.slots()`.
    pub fn divergence_level(&self, index: u64) -> Result<Level, AddressError> {
        if index + 1 >= self.slots() {
            return Err(AddressError::new(format!(
                "no successor for burst index {index}"
            )));
        }
        let mut rest = index;
        for (pos, &radix) in self.radices.iter().enumerate() {
            let digit = rest % radix as u64;
            if digit + 1 < radix as u64 {
                // This digit increments without carrying; but divergence is
                // the *outermost changed* level only when no carry happens
                // beyond it. Since addition of 1 changes digits [0..=pos]
                // where pos is the first non-maximal digit, the outermost
                // changed level is order[pos].
                return Ok(self.order[pos]);
            }
            rest /= radix as u64;
            let _ = pos;
        }
        Err(AddressError::new("burst index at end of device"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_codec() -> AddressCodec {
        AddressCodec::new(
            Geometry::salp_2gb_x8(),
            vec![
                Level::Column,
                Level::Bank,
                Level::Subarray,
                Level::Row,
                Level::Rank,
                Level::Channel,
            ],
        )
        .unwrap()
    }

    #[test]
    fn decode_zero_is_origin() {
        let a = fig6_codec().decode(0).unwrap();
        assert_eq!(a, PhysicalAddress::default());
    }

    #[test]
    fn decode_walks_columns_first() {
        let codec = fig6_codec();
        for i in 0..128 {
            let a = codec.decode(i).unwrap();
            assert_eq!(a.column, i as usize);
            assert_eq!(a.bank, 0);
        }
        let a = codec.decode(128).unwrap();
        assert_eq!(a.column, 0);
        assert_eq!(a.bank, 1);
    }

    #[test]
    fn encode_decode_roundtrip_spot() {
        let codec = fig6_codec();
        for &i in &[0u64, 1, 127, 128, 1023, 1024, 8191, 8192, 1 << 20] {
            let a = codec.decode(i).unwrap();
            assert_eq!(codec.encode(&a).unwrap(), i);
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let codec = fig6_codec();
        assert!(codec.decode(codec.slots()).is_err());
    }

    #[test]
    fn encode_rejects_bad_coordinate() {
        let codec = fig6_codec();
        let bad = PhysicalAddress {
            bank: 8,
            ..PhysicalAddress::default()
        };
        assert!(codec.encode(&bad).is_err());
    }

    #[test]
    fn codec_requires_full_permutation() {
        let err = AddressCodec::new(Geometry::ddr3_2gb_x8(), vec![Level::Column, Level::Row])
            .unwrap_err();
        assert!(err.to_string().contains("order"));
    }

    #[test]
    fn codec_rejects_duplicate_levels() {
        let err = AddressCodec::new(
            Geometry::ddr3_2gb_x8(),
            vec![
                Level::Column,
                Level::Column,
                Level::Bank,
                Level::Row,
                Level::Rank,
                Level::Channel,
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn divergence_column_within_row() {
        let codec = fig6_codec();
        assert_eq!(codec.divergence_level(0).unwrap(), Level::Column);
        assert_eq!(codec.divergence_level(126).unwrap(), Level::Column);
    }

    #[test]
    fn divergence_bank_at_row_boundary() {
        let codec = fig6_codec();
        // Index 127 is the last column of bank 0; the next access goes to
        // bank 1 (Fig. 6 order), so the divergence level is Bank.
        assert_eq!(codec.divergence_level(127).unwrap(), Level::Bank);
    }

    #[test]
    fn divergence_subarray_after_all_banks() {
        let codec = fig6_codec();
        // 128 columns * 8 banks = 1024 slots fill all banks at subarray 0.
        assert_eq!(codec.divergence_level(1023).unwrap(), Level::Subarray);
    }

    #[test]
    fn divergence_row_after_all_subarrays() {
        let codec = fig6_codec();
        // 128 * 8 * 8 = 8192 slots fill row 0 of every subarray of every bank.
        assert_eq!(codec.divergence_level(8191).unwrap(), Level::Row);
    }

    #[test]
    fn absolute_row_folds_subarray() {
        let g = Geometry::salp_2gb_x8();
        let a = PhysicalAddress {
            subarray: 2,
            row: 5,
            ..PhysicalAddress::default()
        };
        assert_eq!(a.absolute_row(&g), 2 * 4096 + 5);
    }

    #[test]
    fn same_bank_and_subarray_predicates() {
        let a = PhysicalAddress {
            bank: 1,
            subarray: 2,
            ..PhysicalAddress::default()
        };
        let b = PhysicalAddress {
            bank: 1,
            subarray: 3,
            row: 9,
            ..PhysicalAddress::default()
        };
        assert!(a.same_bank(&b));
        assert!(!a.same_subarray(&b));
    }

    #[test]
    fn display_is_compact() {
        let a = PhysicalAddress {
            bank: 7,
            row: 12,
            ..PhysicalAddress::default()
        };
        assert_eq!(a.to_string(), "ch0 ra0 ba7 sa0 ro12 co0");
    }
}
