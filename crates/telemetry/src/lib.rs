//! # drmap-telemetry
//!
//! Std-only, low-overhead metrics and tracing for the DRMap service
//! stack. No globals, no background threads, no external crates: a
//! [`MetricsRegistry`] is plain data owned by whoever builds the
//! service, and every recording primitive is a handful of relaxed
//! atomic operations.
//!
//! Four pieces:
//!
//! * [`Counter`] / [`Gauge`] — monotonic and up/down atomics;
//! * [`Histogram`] — a fixed-bucket **log-linear** latency histogram
//!   (64 octaves × 8 sub-buckets over `u64` nanoseconds, ≤12.5%
//!   relative bucket error). `record` is lock-free; [`Histogram::snapshot`]
//!   yields a mergeable [`HistogramSnapshot`] exposing
//!   p50/p95/p99/p999;
//! * [`Span`] — an RAII timer (`Span::enter("explore", &hist)`) that
//!   records its elapsed nanoseconds into a histogram on drop, and
//!   optionally into a per-request [`Trace`] stage breakdown;
//! * [`SlowLog`] — a bounded ring buffer of the slowest requests
//!   (those whose [`Trace`] total exceeded a runtime threshold), each
//!   with its per-stage span breakdown;
//! * [`SnapshotRing`] — a bounded ring of **windowed** metric deltas
//!   fed by a sampler, giving the metrics plane a memory: rates and
//!   windowed percentiles, with evicted windows folded into a base so
//!   `base ∪ deltas == cumulative` holds exactly.
//!
//! Snapshots are plain vectors of `(name, value)` pairs so any codec
//! can serialize them; [`MetricsSnapshot::to_prometheus`] renders the
//! conventional text exposition client-side.
//!
//! ```
//! use drmap_telemetry::{MetricsRegistry, Span};
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("requests_total");
//! let latency = registry.histogram("request_ns");
//! {
//!     let _span = Span::enter("request", &latency);
//!     requests.inc();
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("requests_total"), Some(1));
//! assert_eq!(snap.histogram("request_ns").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Every structure here is a bag of atomics or append-only state, so a
/// poisoned lock never implies a broken invariant.
fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can go up and down (open connections,
/// queue depth, live cache bounds).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power-of-two
/// octave, bounding the relative quantile error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: values below
/// `SUB` get one exact bucket each, every octave above contributes
/// `SUB` linear sub-buckets.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Map a recorded value to its bucket index.
///
/// Values below `SUB` map to themselves (exact). For larger values the
/// index is `(octave - SUB_BITS + 1) * SUB + sub` where `octave` is the
/// position of the highest set bit and `sub` the next `SUB_BITS` bits —
/// the classic HdrHistogram-style log-linear layout.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) as usize & (SUB - 1);
    (octave - SUB_BITS + 1) as usize * SUB + sub
}

/// The largest value that maps to bucket `index` (saturating at
/// `u64::MAX` for the top octave).
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let octave = index / SUB - 1 + SUB_BITS as usize;
    let sub = index % SUB;
    let upper = ((SUB + sub + 1) as u128) << (octave as u32 - SUB_BITS);
    u64::try_from(upper - 1).unwrap_or(u64::MAX)
}

/// A fixed-bucket log-linear histogram over `u64` samples
/// (nanoseconds, by convention). [`Histogram::record`] is lock-free —
/// one relaxed `fetch_add` per bucket/count/sum plus `fetch_min`/
/// `fetch_max` — so it is safe on the DSE hot path.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = match buckets.into_boxed_slice().try_into() {
            Ok(array) => array,
            Err(_) => unreachable!("vector was built with exactly BUCKETS elements"),
        };
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution. Concurrent `record`
    /// calls may straddle the copy (a sample visible in `count` but not
    /// yet its bucket, or vice versa); the snapshot normalizes `count`
    /// to the bucket total so quantile walks are always consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((index as u32, n));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A mergeable point-in-time copy of a [`Histogram`]: the non-empty
/// buckets as sparse `(index, count)` pairs plus count/sum/min/max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples across all buckets.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The largest value that maps to bucket `index` — exposed so
    /// codecs and expositions can label sparse buckets.
    pub fn upper_bound(index: u32) -> u64 {
        bucket_upper_bound(index as usize)
    }

    /// The quantile `q` in `[0, 1]`, as the upper bound of the bucket
    /// containing that rank, clamped to the observed `[min, max]`. The
    /// log-linear layout bounds the relative error at 12.5%. Returns 0
    /// for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(index as usize).clamp(self.min, self.max.max(self.min));
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another snapshot into this one (elementwise bucket sums;
    /// min/max/count/sum combine the obvious way). Merging is
    /// commutative and associative, so per-shard snapshots can be
    /// folded in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = match (self.count - other.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
    }

    /// The windowed delta `self − earlier` for two cumulative snapshots
    /// of the **same** histogram (so buckets only grow). Designed to be
    /// the exact inverse of [`HistogramSnapshot::merge`]:
    /// `earlier.merge(&later.diff(&earlier)) == later`, because the
    /// delta carries the later cumulative `min`/`max` (min only falls,
    /// max only rises) and an empty delta leaves both untouched.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u32, u64)> = Vec::new();
        let mut e = earlier.buckets.iter().peekable();
        for &(index, n) in &self.buckets {
            let mut n = n;
            while let Some(&&(ie, ne)) = e.peek() {
                if ie < index {
                    e.next();
                } else {
                    if ie == index {
                        n = n.saturating_sub(ne);
                        e.next();
                    }
                    break;
                }
            }
            if n > 0 {
                buckets.push((index, n));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: if count == 0 {
                0
            } else {
                self.sum.wrapping_sub(earlier.sum)
            },
            min: if count == 0 { 0 } else { self.min },
            max: if count == 0 { 0 } else { self.max },
            buckets,
        }
    }
}

/// Successive-difference windowing over one [`Histogram`]: each
/// [`HistogramWindow::tick`] snapshots the histogram and returns the
/// delta since the previous tick — the distribution of samples
/// recorded *during* the window, not since boot. Control loops (e.g.
/// an overload controller watching request latency) feed on windowed
/// percentiles so they react to current behavior instead of the
/// all-time aggregate.
#[derive(Debug)]
pub struct HistogramWindow {
    hist: Arc<Histogram>,
    last: Mutex<HistogramSnapshot>,
}

impl HistogramWindow {
    /// A window over `hist`, starting from its current contents (the
    /// first tick covers only samples recorded after construction).
    pub fn new(hist: Arc<Histogram>) -> Self {
        let last = Mutex::new(hist.snapshot());
        HistogramWindow { hist, last }
    }

    /// Close the current window: returns the delta distribution since
    /// the previous tick and starts the next window.
    pub fn tick(&self) -> HistogramSnapshot {
        let cumulative = self.hist.snapshot();
        let mut last = lock_recovered(&self.last);
        let delta = cumulative.diff(&last);
        *last = cumulative;
        delta
    }
}

// ---------------------------------------------------------------------------
// Registry + snapshot
// ---------------------------------------------------------------------------

/// A global-free registry of named counters, gauges, and histograms.
///
/// Handles are `Arc`s: resolve them **once** at startup (the maps are
/// behind mutexes) and record through the handle on hot paths.
/// [`MetricsRegistry::snapshot`] copies everything into a plain,
/// serializable [`MetricsSnapshot`].
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            start: Instant::now(),
            counters: Mutex::default(),
            gauges: Mutex::default(),
            histograms: Mutex::default(),
        }
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Milliseconds since the registry was created — the process uptime
    /// for a registry built at boot.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            lock_recovered(&self.counters)
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            lock_recovered(&self.gauges)
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            lock_recovered(&self.histograms)
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// A point-in-time copy of every metric, sorted by name. Each
    /// snapshot refreshes the `uptime_seconds` gauge first, so every
    /// scrape carries the process age without a background updater.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.gauge("uptime_seconds")
            .set(i64::try_from(self.uptime_ms() / 1000).unwrap_or(i64::MAX));
        MetricsSnapshot {
            counters: lock_recovered(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: lock_recovered(&self.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: lock_recovered(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A serializable point-in-time copy of a [`MetricsRegistry`]: plain
/// name/value vectors, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merge another snapshot into this one: same-name metrics combine
    /// (counters add, gauges add, histograms merge), new names are
    /// inserted in sorted position. Associative and commutative, so
    /// per-worker or per-process snapshots fold in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn fold<V: Clone>(
            into: &mut Vec<(String, V)>,
            from: &[(String, V)],
            combine: impl Fn(&mut V, &V),
        ) {
            for (name, value) in from {
                match into.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => combine(&mut into[i].1, value),
                    Err(i) => into.insert(i, (name.clone(), value.clone())),
                }
            }
        }
        fold(&mut self.counters, &other.counters, |a, b| *a += *b);
        fold(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        fold(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
    }

    /// The windowed delta `self − earlier` for two cumulative snapshots
    /// of the **same** registry: counters subtract, gauges subtract
    /// (deltas may be negative), histograms take their bucket-wise
    /// [`HistogramSnapshot::diff`]. Every name in `self` is kept even
    /// at zero delta, so `earlier.merge(&delta)` reconstructs `self`
    /// exactly — the invariant [`SnapshotRing`] is built on.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| {
                    (
                        name.clone(),
                        // check:allow(metrics-doc-drift): name lookup, not a registration
                        v.saturating_sub(earlier.counter(name).unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, v)| {
                    // check:allow(metrics-doc-drift): name lookup, not a registration
                    (name.clone(), v - earlier.gauge(name).unwrap_or(0))
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| {
                    // check:allow(metrics-doc-drift): name lookup, not a registration
                    let delta = match earlier.histogram(name) {
                        Some(e) => h.diff(e),
                        None => h.clone(),
                    };
                    (name.clone(), delta)
                })
                .collect(),
        }
    }

    /// Render the snapshot as a Prometheus-style text exposition: each
    /// metric prefixed `drmap_`, counters and gauges as single samples,
    /// histograms as summaries (`quantile` labels plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "# TYPE drmap_{name} counter\ndrmap_{name} {value}\n"
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "# TYPE drmap_{name} gauge\ndrmap_{name} {value}\n"
            ));
        }
        // Derived convenience gauge: scrapers get the cache hit ratio
        // without dividing raw counters themselves. Never registered
        // (it is computed per exposition), so it lives outside the
        // taxonomy tables.
        if let (Some(hits), Some(misses)) = (
            self.counter("cache_hits_total"),
            self.counter("cache_misses_total"),
        ) {
            let lookups = hits + misses;
            if lookups > 0 {
                out.push_str(&format!(
                    "# TYPE drmap_cache_hit_ratio gauge\ndrmap_cache_hit_ratio {:.6}\n",
                    hits as f64 / lookups as f64
                ));
            }
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE drmap_{name} summary\n"));
            for (label, q) in [
                ("0.5", 0.50),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                out.push_str(&format!(
                    "drmap_{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("drmap_{name}_sum {}\n", h.sum));
            out.push_str(&format!("drmap_{name}_count {}\n", h.count));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Snapshot ring (metrics time series)
// ---------------------------------------------------------------------------

/// One windowed sample in a [`SnapshotRing`]: the delta of every
/// metric over `(previous sample, this sample]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSample {
    /// Registry uptime in milliseconds when the sample was taken.
    pub uptime_ms: u64,
    /// Length of the window this delta covers, in milliseconds.
    pub window_ms: u64,
    /// Per-metric deltas over the window (see [`MetricsSnapshot::diff`]).
    pub delta: MetricsSnapshot,
}

/// A bounded ring of windowed metric deltas — the memory of the
/// metrics plane. A sampler thread feeds it cumulative snapshots at a
/// fixed cadence; the ring stores per-window deltas so rates and
/// *windowed* percentiles (p99 over the last window, not since boot)
/// stay queryable.
///
/// Invariant (held exactly, including across wraparound): the `base`
/// snapshot merged with every retained sample delta equals the last
/// recorded cumulative snapshot. Evicted samples are folded into
/// `base`, so nothing is ever lost — only its time resolution.
#[derive(Debug)]
pub struct SnapshotRing {
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    capacity: usize,
    base: MetricsSnapshot,
    last: MetricsSnapshot,
    last_uptime_ms: u64,
    samples: VecDeque<SnapshotSample>,
}

/// A copy of a [`SnapshotRing`]'s state: the pre-window `base`, the
/// retained windowed samples (oldest first), and the cumulative
/// snapshot at the latest sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotHistory {
    /// Everything recorded before the oldest retained window.
    pub base: MetricsSnapshot,
    /// Retained windowed deltas, oldest first.
    pub samples: Vec<SnapshotSample>,
    /// The cumulative snapshot as of the newest sample — always equal
    /// to `base` merged with every sample delta.
    pub cumulative: MetricsSnapshot,
}

impl SnapshotHistory {
    /// Fold `base` and every sample delta back into one cumulative
    /// snapshot. Equals [`SnapshotHistory::cumulative`] by the ring
    /// invariant — callers (and tests) can verify reconstruction.
    pub fn reconstructed(&self) -> MetricsSnapshot {
        let mut out = self.base.clone();
        for sample in &self.samples {
            out.merge(&sample.delta);
        }
        out
    }
}

impl SnapshotRing {
    /// A ring retaining at most `capacity` windowed samples.
    pub fn new(capacity: usize) -> SnapshotRing {
        SnapshotRing {
            inner: Mutex::new(RingInner {
                capacity: capacity.max(1),
                base: MetricsSnapshot::default(),
                last: MetricsSnapshot::default(),
                last_uptime_ms: 0,
                samples: VecDeque::new(),
            }),
        }
    }

    /// Record one cumulative snapshot taken at `uptime_ms`, storing
    /// its delta against the previous sample. When full, the oldest
    /// window is folded into the base rather than dropped.
    ///
    /// The ring's own cumulative advances by merging the delta in
    /// (rather than adopting `cumulative` verbatim), so the invariant
    /// is exact even when a concurrent recorder straddles the snapshot
    /// copy — the two only differ on a torn read of a histogram
    /// min/sum whose bucket increment was not yet visible.
    pub fn record(&self, cumulative: MetricsSnapshot, uptime_ms: u64) {
        let mut inner = lock_recovered(&self.inner);
        let delta = cumulative.diff(&inner.last);
        let sample = SnapshotSample {
            uptime_ms,
            window_ms: uptime_ms.saturating_sub(inner.last_uptime_ms),
            delta,
        };
        if inner.samples.len() == inner.capacity {
            if let Some(evicted) = inner.samples.pop_front() {
                inner.base.merge(&evicted.delta);
            }
        }
        inner.last.merge(&sample.delta);
        inner.samples.push_back(sample);
        inner.last_uptime_ms = uptime_ms;
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        lock_recovered(&self.inner).samples.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the ring's state for serialization or inspection.
    pub fn history(&self) -> SnapshotHistory {
        let inner = lock_recovered(&self.inner);
        SnapshotHistory {
            base: inner.base.clone(),
            samples: inner.samples.iter().cloned().collect(),
            cumulative: inner.last.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Span + Trace
// ---------------------------------------------------------------------------

/// An RAII timer: created with [`Span::enter`], it records its elapsed
/// nanoseconds into the given [`Histogram`] when dropped — and, if
/// attached to a [`Trace`] via [`Span::traced`], adds the duration to
/// that request's per-stage breakdown under the span's name.
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
pub struct Span {
    name: &'static str,
    hist: Arc<Histogram>,
    trace: Option<Arc<Trace>>,
    start: Instant,
}

impl Span {
    /// Start a named span recording into `hist` on drop.
    pub fn enter(name: &'static str, hist: &Arc<Histogram>) -> Span {
        Span {
            name,
            hist: Arc::clone(hist),
            trace: None,
            start: Instant::now(),
        }
    }

    /// Attach the span to a per-request trace (no-op when `None`, so
    /// untraced paths pay nothing extra).
    pub fn traced(mut self, trace: Option<&Arc<Trace>>) -> Span {
        self.trace = trace.map(Arc::clone);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        if let Some(trace) = &self.trace {
            trace.add(self.name, ns);
        }
    }
}

/// A per-request trace: the wire `id`, a start instant, and an
/// aggregated per-stage nanosecond breakdown fed by [`Span::traced`].
#[derive(Debug)]
pub struct Trace {
    id: u64,
    start: Instant,
    stages: Mutex<Vec<(&'static str, u64)>>,
}

impl Trace {
    /// Start a trace for request `id` (the wire job id).
    pub fn new(id: u64) -> Arc<Trace> {
        Arc::new(Trace {
            id,
            start: Instant::now(),
            stages: Mutex::new(Vec::new()),
        })
    }

    /// The request id this trace belongs to.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nanoseconds since the trace started.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Add `ns` to stage `name` (same-name stages aggregate, e.g. one
    /// `cache_lookup` per layer of a network job).
    pub fn add(&self, name: &'static str, ns: u64) {
        let mut stages = lock_recovered(&self.stages);
        match stages.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += ns,
            None => stages.push((name, ns)),
        }
    }

    /// The aggregated per-stage breakdown, in first-recorded order.
    pub fn stages(&self) -> Vec<(&'static str, u64)> {
        lock_recovered(&self.stages).clone()
    }
}

// ---------------------------------------------------------------------------
// Slow-request log
// ---------------------------------------------------------------------------

/// One slow request: its trace id, total latency, and per-stage span
/// breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The wire `id` of the slow job.
    pub trace_id: u64,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Aggregated `(stage, nanoseconds)` pairs from the trace.
    pub stages: Vec<(String, u64)>,
}

/// Version tag for the persisted slow-trace record format.
const SLOW_RECORD_VERSION: u8 = 1;

impl SlowEntry {
    /// Encode the entry as a self-describing binary record carrying a
    /// monotonic sequence number and a wall-clock timestamp, suitable
    /// for writing through the persistent store so post-mortems
    /// survive restarts. Format (all integers little-endian):
    /// `version:u8 seq:u64 unix_ms:u64 trace_id:u64 total_ns:u64
    /// stage_count:u32 (name_len:u32 name_bytes ns:u64)*`.
    pub fn encode_record(&self, seq: u64, unix_ms: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(37 + self.stages.len() * 24);
        out.push(SLOW_RECORD_VERSION);
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&unix_ms.to_le_bytes());
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.total_ns.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(self.stages.len())
                .unwrap_or(u32::MAX)
                .to_le_bytes(),
        );
        for (name, ns) in &self.stages {
            let bytes = name.as_bytes();
            out.extend_from_slice(&u32::try_from(bytes.len()).unwrap_or(u32::MAX).to_le_bytes());
            out.extend_from_slice(bytes);
            out.extend_from_slice(&ns.to_le_bytes());
        }
        out
    }

    /// Decode a record produced by [`SlowEntry::encode_record`],
    /// returning `(seq, unix_ms, entry)`. `None` for truncated bytes
    /// or an unknown version.
    pub fn decode_record(bytes: &[u8]) -> Option<(u64, u64, SlowEntry)> {
        fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
            let chunk = bytes.get(*at..*at + 8)?;
            *at += 8;
            Some(u64::from_le_bytes(chunk.try_into().ok()?))
        }
        fn take_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
            let chunk = bytes.get(*at..*at + 4)?;
            *at += 4;
            Some(u32::from_le_bytes(chunk.try_into().ok()?))
        }
        if *bytes.first()? != SLOW_RECORD_VERSION {
            return None;
        }
        let mut at = 1usize;
        let seq = take_u64(bytes, &mut at)?;
        let unix_ms = take_u64(bytes, &mut at)?;
        let trace_id = take_u64(bytes, &mut at)?;
        let total_ns = take_u64(bytes, &mut at)?;
        let stage_count = take_u32(bytes, &mut at)? as usize;
        // Cap pre-allocation by what the payload could actually hold.
        let mut stages = Vec::with_capacity(stage_count.min(bytes.len() / 12));
        for _ in 0..stage_count {
            let len = take_u32(bytes, &mut at)? as usize;
            let name = bytes.get(at..at + len)?;
            at += len;
            let name = String::from_utf8(name.to_vec()).ok()?;
            let ns = take_u64(bytes, &mut at)?;
            stages.push((name, ns));
        }
        Some((
            seq,
            unix_ms,
            SlowEntry {
                trace_id,
                total_ns,
                stages,
            },
        ))
    }
}

/// A bounded ring buffer of the most recent slow requests. The
/// threshold **and** the ring capacity are runtime-tunable;
/// `u64::MAX` (the default threshold) disables logging entirely, `0`
/// logs every observed request.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: AtomicU64,
    capacity: AtomicUsize,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A disabled slow log keeping at most `capacity` entries once a
    /// threshold is set.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            threshold_ns: AtomicU64::new(u64::MAX),
            capacity: AtomicUsize::new(capacity.max(1)),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Set the slow threshold in milliseconds (`0` logs everything).
    pub fn set_threshold_ms(&self, ms: u64) {
        self.threshold_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// The current threshold in nanoseconds (`u64::MAX` = disabled).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// The current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Retune the ring capacity live (clamped to at least 1).
    /// Shrinking evicts the oldest entries immediately.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut entries = lock_recovered(&self.entries);
        while entries.len() > capacity {
            entries.pop_front();
        }
    }

    /// Record a finished request if it crossed the threshold; returns
    /// its total nanoseconds either way. The oldest entry is evicted
    /// once the ring is full.
    pub fn observe(&self, trace: &Trace) -> u64 {
        let total_ns = trace.elapsed_ns();
        if total_ns >= self.threshold_ns.load(Ordering::Relaxed) {
            if let Some(entry) = self.capture(trace, total_ns) {
                let capacity = self.capacity.load(Ordering::Relaxed);
                let mut entries = lock_recovered(&self.entries);
                while entries.len() >= capacity {
                    entries.pop_front();
                }
                entries.push_back(entry);
            }
        }
        total_ns
    }

    /// Build the [`SlowEntry`] for a trace that crossed the threshold;
    /// `None` when it did not. Lets callers persist the same entry the
    /// ring keeps without re-walking the trace.
    pub fn capture(&self, trace: &Trace, total_ns: u64) -> Option<SlowEntry> {
        if total_ns < self.threshold_ns.load(Ordering::Relaxed) {
            return None;
        }
        Some(SlowEntry {
            trace_id: trace.id(),
            total_ns,
            stages: trace
                .stages()
                .into_iter()
                .map(|(name, ns)| (name.to_owned(), ns))
                .collect(),
        })
    }

    /// The logged entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        lock_recovered(&self.entries).iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

    #[test]
    fn bucket_index_and_bounds_agree_across_the_range() {
        // Every probe value must land in a bucket whose upper bound is
        // >= the value, and the *previous* bucket's bound must be < it.
        let probes: Vec<u64> = (0..=20)
            .flat_map(|p| {
                let base = 1u64 << p;
                [base.saturating_sub(1), base, base + 1, base * 3 / 2]
            })
            .chain([u64::MAX / 2, u64::MAX - 1, u64::MAX])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(
                bucket_upper_bound(i) >= v,
                "upper bound {} < value {v}",
                bucket_upper_bound(i)
            );
            if i > 0 {
                assert!(
                    bucket_upper_bound(i - 1) < v,
                    "value {v} should not fit bucket {}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        // Exact p50 is 500; log-linear error is bounded at 12.5%.
        let p50 = snap.p50();
        assert!((500..=563).contains(&p50), "p50 {p50}");
        let p99 = snap.p99();
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert!(snap.p50() <= snap.p95());
        assert!(snap.p95() <= snap.p99());
        assert!(snap.p99() <= snap.p999());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn registry_handles_are_shared_and_snapshots_sorted() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("b_second");
        let b = registry.counter("b_second");
        a.inc();
        b.add(2);
        registry.counter("a_first").inc();
        registry.gauge("depth").set(-3);
        registry.histogram("lat_ns").record(7);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_first".to_owned(), 1), ("b_second".to_owned(), 3)]
        );
        assert_eq!(snap.gauge("depth"), Some(-3));
        assert_eq!(snap.histogram("lat_ns").unwrap().count, 1);
    }

    #[test]
    fn span_records_into_histogram_and_trace() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("stage_ns");
        let trace = Trace::new(42);
        {
            let _span = Span::enter("stage", &hist).traced(Some(&trace));
        }
        {
            let _span = Span::enter("stage", &hist).traced(Some(&trace));
        }
        assert_eq!(hist.count(), 2);
        let stages = trace.stages();
        assert_eq!(stages.len(), 1, "same-name stages aggregate");
        assert_eq!(stages[0].0, "stage");
        assert_eq!(trace.id(), 42);
    }

    #[test]
    fn slow_log_honors_threshold_and_capacity() {
        let log = SlowLog::new(2);
        // Disabled by default: nothing is recorded.
        log.observe(&Trace::new(1));
        assert!(log.entries().is_empty());
        // Threshold 0 records everything; the ring keeps the last 2.
        log.set_threshold_ms(0);
        for id in 2..=4 {
            let trace = Trace::new(id);
            trace.add("stage", 5);
            log.observe(&trace);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].trace_id, 3);
        assert_eq!(entries[1].trace_id, 4);
        assert_eq!(entries[1].stages, vec![("stage".to_owned(), 5)]);
    }

    #[test]
    fn slow_log_capacity_retunes_live() {
        let log = SlowLog::new(4);
        assert_eq!(log.capacity(), 4);
        log.set_threshold_ms(0);
        for id in 1..=4 {
            log.observe(&Trace::new(id));
        }
        assert_eq!(log.entries().len(), 4);
        // Shrinking evicts the oldest immediately …
        log.set_capacity(2);
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].trace_id, 3);
        // … growing admits more, and 0 clamps to 1.
        log.set_capacity(3);
        for id in 5..=9 {
            log.observe(&Trace::new(id));
        }
        assert_eq!(log.entries().len(), 3);
        log.set_capacity(0);
        assert_eq!(log.capacity(), 1);
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn slow_entry_record_round_trips() {
        let entry = SlowEntry {
            trace_id: 77,
            total_ns: 123_456_789,
            stages: vec![
                ("frame_decode".to_owned(), 1_000),
                ("explore".to_owned(), 120_000_000),
            ],
        };
        let bytes = entry.encode_record(9, 1_700_000_000_000);
        let (seq, unix_ms, decoded) = SlowEntry::decode_record(&bytes).expect("decodes");
        assert_eq!(seq, 9);
        assert_eq!(unix_ms, 1_700_000_000_000);
        assert_eq!(decoded, entry);
        // Truncations and version skew fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                SlowEntry::decode_record(&bytes[..cut]).is_none(),
                "cut {cut}"
            );
        }
        let mut wrong = bytes.clone();
        wrong[0] = 0xFF;
        assert!(SlowEntry::decode_record(&wrong).is_none());
    }

    #[test]
    fn histogram_window_yields_per_window_deltas() {
        let hist = Arc::new(Histogram::new());
        hist.record(1_000);
        let window = HistogramWindow::new(Arc::clone(&hist));
        // Samples recorded before construction belong to no window.
        assert_eq!(window.tick().count, 0);
        hist.record(5_000);
        hist.record(7_000);
        let first = window.tick();
        assert_eq!(first.count, 2);
        assert!(first.p99() >= 5_000);
        // An idle window is empty, not a replay of the last one.
        assert_eq!(window.tick().count, 0);
        hist.record(100);
        assert_eq!(window.tick().count, 1);
    }

    #[test]
    fn uptime_gauge_appears_on_every_snapshot() {
        let registry = MetricsRegistry::new();
        let snap = registry.snapshot();
        assert!(snap.gauge("uptime_seconds").is_some());
        assert!(snap.gauge("uptime_seconds").unwrap() >= 0);
    }

    #[test]
    fn cache_hit_ratio_is_derived_in_the_exposition() {
        let registry = MetricsRegistry::new();
        registry.counter("cache_hits_total").add(3);
        registry.counter("cache_misses_total").add(1);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE drmap_cache_hit_ratio gauge"));
        assert!(text.contains("drmap_cache_hit_ratio 0.750000"));
        // No lookups yet → no ratio line (avoid 0/0).
        let empty = MetricsRegistry::new();
        empty.counter("cache_hits_total");
        empty.counter("cache_misses_total");
        assert!(!empty.snapshot().to_prometheus().contains("cache_hit_ratio"));
    }

    #[test]
    fn snapshot_ring_reconstructs_under_concurrent_recording() {
        // Writers hammer the registry while a sampler records into the
        // ring; after the writers stop, one final sample makes the
        // ring's cumulative match a quiesced snapshot exactly.
        let registry = Arc::new(MetricsRegistry::new());
        let ring = Arc::new(SnapshotRing::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let c = registry.counter("ops_total");
                    let h = registry.histogram("op_ns");
                    for i in 0..2_000u64 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        c.inc();
                        h.record(i * (w + 1));
                    }
                })
            })
            .collect();
        for _ in 0..8 {
            ring.record(registry.snapshot(), registry.uptime_ms());
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer");
        }
        ring.record(registry.snapshot(), registry.uptime_ms());
        let history = ring.history();
        assert!(history.samples.len() <= 4, "ring respects capacity");
        assert_eq!(
            history.reconstructed(),
            history.cumulative,
            "base + deltas must equal the cumulative snapshot"
        );
    }

    #[test]
    fn prometheus_exposition_covers_every_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("requests_total").add(3);
        registry.gauge("connections_open").set(1);
        registry.histogram("request_ns").record(1000);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE drmap_requests_total counter"));
        assert!(text.contains("drmap_requests_total 3"));
        assert!(text.contains("# TYPE drmap_connections_open gauge"));
        assert!(text.contains("drmap_connections_open 1"));
        assert!(text.contains("# TYPE drmap_request_ns summary"));
        assert!(text.contains("drmap_request_ns{quantile=\"0.5\"}"));
        assert!(text.contains("drmap_request_ns_count 1"));
    }

    /// Exact quantile of a sorted sample vector, matching the
    /// ceil-rank convention the snapshot uses.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Recorded-sample quantiles agree with exact quantiles to
        /// within the documented 12.5% bucket error.
        #[test]
        fn histogram_quantiles_are_within_bucket_error(
            samples in proptest::collection::vec(1u64..1_000_000_000, 1..300),
            q in 0.01f64..1.0,
        ) {
            let h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let snap = h.snapshot();
            prop_assert_eq!(snap.count, samples.len() as u64);
            let exact = exact_quantile(&sorted, q);
            let estimate = snap.quantile(q);
            // The estimate is a bucket upper bound clamped to the
            // observed max: never below the exact value's bucket lower
            // bound, never more than one sub-bucket (12.5%) above it.
            prop_assert!(
                estimate >= exact || bucket_index(estimate) >= bucket_index(exact),
                "estimate {} under exact {}", estimate, exact
            );
            prop_assert!(
                estimate <= exact + exact / 8 + 1,
                "estimate {} overshoots exact {}", estimate, exact
            );
        }

        /// `diff` is the exact inverse of `merge` for cumulative
        /// snapshots of one histogram: earlier ∪ (later − earlier)
        /// reconstructs later bit-for-bit.
        #[test]
        fn histogram_diff_inverts_merge(
            first in proptest::collection::vec(0u64..1_000_000, 0..100),
            second in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let h = Histogram::new();
            for &v in &first {
                h.record(v);
            }
            let earlier = h.snapshot();
            for &v in &second {
                h.record(v);
            }
            let later = h.snapshot();
            let delta = later.diff(&earlier);
            prop_assert_eq!(delta.count, second.len() as u64);
            let mut rebuilt = earlier.clone();
            rebuilt.merge(&delta);
            prop_assert_eq!(&rebuilt, &later);
        }

        /// SnapshotRing reconstruction is exact under wraparound: the
        /// base merged with the retained deltas always equals the
        /// cumulative snapshot, no matter how many windows the ring
        /// evicted along the way.
        #[test]
        fn snapshot_ring_wraparound_is_exact(
            batches in proptest::collection::vec(
                proptest::collection::vec(0u64..1_000_000, 0..20), 1..12),
            capacity in 1usize..5,
        ) {
            let registry = MetricsRegistry::new();
            let ring = SnapshotRing::new(capacity);
            let counter = registry.counter("ops_total");
            let hist = registry.histogram("op_ns");
            let gauge = registry.gauge("depth");
            let mut last = MetricsSnapshot::default();
            for (i, batch) in batches.iter().enumerate() {
                for &v in batch {
                    counter.inc();
                    hist.record(v);
                }
                // Gauges move both directions between windows.
                gauge.set(i as i64 * 7 - 3);
                last = registry.snapshot();
                ring.record(last.clone(), registry.uptime_ms());
            }
            let history = ring.history();
            prop_assert!(history.samples.len() <= capacity);
            prop_assert_eq!(&history.cumulative, &last);
            prop_assert_eq!(&history.reconstructed(), &history.cumulative);
        }

        /// Snapshot merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c),
        /// and merging equals recording everything into one histogram.
        #[test]
        fn snapshot_merge_is_associative(
            a in proptest::collection::vec(0u64..1_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000, 0..100),
            c in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let hist = |samples: &[u64]| {
                let h = Histogram::new();
                for &v in samples {
                    h.record(v);
                }
                h.snapshot()
            };
            let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);

            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);

            prop_assert_eq!(&left, &right);

            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &hist(&all));
        }
    }
}
