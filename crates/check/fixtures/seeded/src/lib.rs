//! Seeded violation: this crate root is missing
//! `#![forbid(unsafe_code)]`, so `forbid-unsafe` must fire.

/// Nothing to see here; the missing inner attribute is the point.
pub fn placeholder() {}
