#![forbid(unsafe_code)]
//! Seeded-violation service crate: `server.rs` carries one of every
//! request-path sin.

pub mod proto;
pub mod server;
