//! Seeded violations for the per-file lints. Every pattern below must
//! be flagged by `drmap-check --root crates/check/fixtures/seeded`;
//! CI asserts the non-zero exit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// lock-poison: propagates poisoning instead of recovering.
pub fn seeded_lock_unwrap(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

/// lock-poison: `.expect` is the same sin with a message.
pub fn seeded_lock_expect(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("poisoned")
}

/// no-unwrap-hot-path: a bare unwrap on the request path.
pub fn seeded_unwrap(v: Option<u64>) -> u64 {
    v.unwrap()
}

/// no-unwrap-hot-path: a panic! on the request path.
pub fn seeded_panic(ok: bool) {
    if !ok {
        panic!("request path must not panic");
    }
}

/// ordering-audit: a raw ordering with no `// ordering:` comment.
pub fn seeded_unjustified_ordering(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}

/// metrics-doc-drift: registers a metric no doc table mentions, and
/// one through a computed name the lexer cannot check.
pub fn seeded_metrics(registry: &Registry, suffix: &str) {
    registry.counter("undocumented_total");
    registry.counter(&format!("frames_{suffix}_total"));
}

/// bounded-retry: spins on a retry with nothing bounding it.
pub fn seeded_unbounded_retry(mut retry_needed: bool) -> u32 {
    let mut spins = 0;
    while retry_needed {
        spins += 1;
        if spins > 3 {
            retry_needed = false;
        }
    }
    spins
}

/// Stand-in registry so the fixture is self-contained.
pub struct Registry;

impl Registry {
    /// Register-or-fetch a counter by name.
    pub fn counter(&self, _name: &str) {}
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be flagged.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
