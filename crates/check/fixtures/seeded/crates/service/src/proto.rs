//! Seeded drift: `Frobnicate` is not in `VARIANT_CAPS`, `Metrics` is
//! mapped to the `metrics` capability but `capabilities()` below does
//! not advertise it, and `docs/PROTOCOL.md` documents neither verb.

/// The protocol surface, with drift seeded in.
pub enum Request {
    /// Fine: documented and mapped.
    Hello {
        /// Protocol version.
        version: u64,
    },
    /// proto-doc-drift: unknown to VARIANT_CAPS.
    Frobnicate {
        /// How hard to frobnicate.
        intensity: u8,
    },
    /// proto-doc-drift: mapped to a capability the list lacks, and
    /// missing from the doc.
    Metrics {
        /// Correlation id.
        id: Option<u64>,
    },
}

/// The advertised capability list — `metrics` is missing, and
/// `sideband` is advertised but never documented.
pub fn capabilities() -> Vec<String> {
    vec!["jobs".to_owned(), "sideband".to_owned()]
}
