//! Model-checker gates: the telemetry and cache models verify clean
//! over every interleaving, the negative controls fail as designed
//! (proving the explorer explores), and the seed changes choice order
//! without changing the set of schedules.

use drmap_check::model::counter::{BrokenCounterModel, CounterModel};
use drmap_check::model::histogram::{HistogramMergeModel, SnapshotTearModel};
use drmap_check::model::singleflight::SingleFlightModel;
use drmap_check::model::{explore, standard_suite, Config};

/// The CI acceptance gate: the record-vs-snapshot-merge model must
/// enumerate at least 1000 distinct interleavings with zero
/// violations.
#[test]
fn histogram_merge_verifies_over_at_least_1000_interleavings() {
    let report = explore(&HistogramMergeModel::default(), &Config::default());
    assert!(
        report.verified(),
        "merge model violated: {:?}",
        report.violations
    );
    assert!(
        report.schedules >= 1000,
        "only {} schedules enumerated — the model shrank below the CI gate",
        report.schedules
    );
}

/// 3 threads × 3 single-step increments has exactly 9!/(3!·3!·3!) =
/// 1680 interleavings; hitting that count exactly proves the DFS is
/// exhaustive, with no duplicate or skipped schedule.
#[test]
fn counter_enumeration_is_exhaustive() {
    let report = explore(&CounterModel::default(), &Config::default());
    assert!(report.verified(), "{:?}", report.violations);
    assert_eq!(report.schedules, 1680);
}

/// Negative control: the two-step load-then-store counter must lose an
/// update under some interleaving. A checker that can't find this
/// isn't checking anything.
#[test]
fn broken_counter_is_caught() {
    let report = explore(&BrokenCounterModel::default(), &Config::default());
    assert!(
        !report.violations.is_empty(),
        "the explorer failed to find the classic lost-update race"
    );
    assert!(report.violations[0].message.contains("lost update"));
    assert!(
        !report.violations[0].schedule.is_empty(),
        "a violation must carry its replay schedule"
    );
}

/// Negative control: a single-flight that claims leadership from a
/// stale, unlocked read must double-compute under some schedule.
#[test]
fn racy_single_flight_is_caught() {
    let report = explore(&SingleFlightModel::racy(), &Config::default());
    assert!(
        !report.violations.is_empty(),
        "the explorer failed to find the double-compute race"
    );
}

/// The correct single-flight verifies, and so does the leader-failure
/// mode: waiters observe the failure instead of deadlocking on a value
/// that will never arrive.
#[test]
fn single_flight_verifies_including_leader_failure() {
    for model in [
        SingleFlightModel::default(),
        SingleFlightModel::leader_panics(),
    ] {
        let report = explore(&model, &Config::default());
        assert!(
            report.verified(),
            "{} violated: {:?}",
            report.model,
            report.violations
        );
    }
}

/// The snapshot-tear model: a reader interleaved with writers never
/// observes counts ahead of the shared state and converges exactly.
#[test]
fn snapshot_tear_verifies() {
    let report = explore(&SnapshotTearModel, &Config::default());
    assert!(report.verified(), "{:?}", report.violations);
}

/// The seed rotates which thread is tried first at each depth but the
/// enumerated set is invariant: identical schedule/state/depth counts
/// for every seed, on both a clean model and a failing one.
#[test]
fn seed_rotates_order_but_not_the_schedule_set() {
    let baseline = explore(&CounterModel::default(), &Config::default());
    for seed in [1, 42, 0xdead_beef] {
        let cfg = Config {
            seed,
            ..Config::default()
        };
        let report = explore(&CounterModel::default(), &cfg);
        assert_eq!(report.schedules, baseline.schedules, "seed {seed}");
        assert_eq!(report.states, baseline.states, "seed {seed}");
        assert_eq!(report.max_depth, baseline.max_depth, "seed {seed}");
        assert!(report.verified(), "seed {seed}");

        let broken = explore(&BrokenCounterModel::default(), &cfg);
        assert!(
            !broken.violations.is_empty(),
            "seed {seed} hid the lost-update race"
        );
    }
}

/// The `--models` CLI suite — every shipped model at its standard size
/// — verifies clean, and the suite as a whole clears the 1000-
/// interleaving bar by a wide margin.
#[test]
fn standard_suite_verifies() {
    let reports = standard_suite(0);
    assert_eq!(reports.len(), 5);
    let mut total = 0;
    for report in &reports {
        assert!(
            report.verified(),
            "{} violated: {:?}",
            report.model,
            report.violations
        );
        total += report.schedules;
    }
    assert!(total >= 1000, "suite only covered {total} schedules");
}
