//! Golden-fixture tests for the lint engine.
//!
//! Every `.rs` file under `tests/fixtures/` is one self-describing
//! case: its first lines declare the virtual workspace path it should
//! be lexed as and the exact set of lints it must fire:
//!
//! ```text
//! // fixture-path: crates/store/src/store.rs
//! // fixture-expect: lock-poison        (or `none`)
//! ```
//!
//! The harness lints each fixture as a one-file workspace and asserts
//! the fired-lint set equals the declared set — so a lexer or matcher
//! regression shows up as a named fixture, not a CI mystery.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use drmap_check::{engine, Lint, Workspace};

/// Single-file fixtures still need an observability doc present;
/// otherwise `metrics-doc-drift` reports the doc itself as missing for
/// any in-scope path. The taxonomy is intentionally empty — fixtures
/// register no metrics.
const EMPTY_TAXONOMY: &str = "## Metric taxonomy\n";

fn directive<'a>(text: &'a str, key: &str, file: &Path) -> &'a str {
    text.lines()
        .find_map(|l| l.strip_prefix(key))
        .unwrap_or_else(|| panic!("{} is missing a `{key}` directive", file.display()))
        .trim()
}

#[test]
fn golden_fixtures_fire_exactly_their_declared_lints() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<_> = fs::read_dir(&dir)
        .expect("tests/fixtures must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 10,
        "expected at least 10 golden fixtures, found {}",
        paths.len()
    );

    for path in paths {
        let text = fs::read_to_string(&path).expect("readable fixture");
        let vpath = directive(&text, "// fixture-path:", &path);
        let expect = directive(&text, "// fixture-expect:", &path);
        let expected: BTreeSet<String> = if expect == "none" {
            BTreeSet::new()
        } else {
            expect.split(',').map(|s| s.trim().to_owned()).collect()
        };
        for name in &expected {
            assert!(
                Lint::from_name(name).is_some(),
                "{}: `{name}` is not a known lint",
                path.display()
            );
        }

        let ws = Workspace::from_sources(&[
            (vpath, text.as_str()),
            ("docs/OBSERVABILITY.md", EMPTY_TAXONOMY),
        ]);
        let diags = engine::run_all(&ws);
        let fired: BTreeSet<String> = diags.iter().map(|d| d.lint.name().to_owned()).collect();
        assert_eq!(
            fired,
            expected,
            "{} (as {vpath}) fired the wrong lint set; diagnostics were:\n{}",
            path.display(),
            diags
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The seeded violation tree (`fixtures/seeded/`) is a miniature repo
/// with every class of violation planted; every lint in `Lint::ALL`
/// must trip on it. CI additionally asserts the CLI exits nonzero
/// against it.
#[test]
fn seeded_tree_trips_every_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/seeded");
    let ws = Workspace::load(&root).expect("seeded fixture tree loads");
    let diags = engine::run_all(&ws);
    let fired: BTreeSet<&str> = diags.iter().map(|d| d.lint.name()).collect();
    for lint in &Lint::ALL {
        assert!(
            fired.contains(lint.name()),
            "seeded tree does not trip `{}`; diagnostics were:\n{}",
            lint.name(),
            diags
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The real workspace must lint clean — the same gate CI applies via
/// `drmap-check --deny-all`, run here so `cargo test` alone catches a
/// violation introduced alongside a code change.
#[test]
fn workspace_head_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 10,
        "workspace walk looks wrong: only {} files",
        ws.files.len()
    );
    let diags = engine::run_all(&ws);
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; diagnostics:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
