//! Property tests for the lexer/matcher boundary: deny patterns
//! planted inside string literals, raw strings, and (nested) comments
//! must never fire a lint, while the same patterns as real code must
//! always fire — across random containers and padding.

use drmap_check::lexer::{lex, TokKind};
use drmap_check::{engine, Workspace};
use proptest::prelude::*;

/// Virtual path in scope for lock-poison, no-unwrap-hot-path,
/// ordering-audit, and metrics-doc-drift all at once.
const VPATH: &str = "crates/service/src/cache.rs";

/// Keeps metrics-doc-drift from reporting a missing doc; empty because
/// the generated sources register nothing.
const EMPTY_TAXONOMY: &str = "## Metric taxonomy\n";

/// `(snippet, lint that must fire when the snippet is code)`.
const PATTERNS: [(&str, &str); 5] = [
    ("let g = m.lock().unwrap();", "lock-poison"),
    ("let g = m.lock().expect(\"poisoned\");", "lock-poison"),
    ("let v = o.unwrap();", "no-unwrap-hot-path"),
    ("panic!(\"boom\");", "no-unwrap-hot-path"),
    ("let x = a.load(Ordering::SeqCst);", "ordering-audit"),
];

/// Identifier fragments that only occur in the planted snippet, never
/// in the scaffolding — if one shows up in a non-string token, the
/// lexer leaked container content into the code stream.
const MARKERS: [&str; 5] = ["unwrap", "expect", "panic", "SeqCst", "lock"];

/// Wrap `snippet` in one of four containers the lexer must treat as
/// opaque: escaped string, hashed raw string, line comment, nested
/// block comment.
fn embed(snippet: &str, container: usize, pad: usize) -> String {
    let padding = "    let _pad = 0;\n".repeat(pad);
    let planted = match container {
        0 => format!(
            "    let _s = \"{}\";",
            snippet.replace('\\', "\\\\").replace('"', "\\\"")
        ),
        1 => format!("    let _s = r##\"{snippet}\"##;"),
        2 => format!("    // {snippet}"),
        _ => format!("    /* outer /* {snippet} */ tail */"),
    };
    format!("pub fn scaffold() {{\n{padding}{planted}\n{padding}}}\n")
}

/// The same snippet as real code in the same scaffold.
fn as_code(snippet: &str, pad: usize) -> String {
    let padding = "    let _pad = 0;\n".repeat(pad);
    format!("pub fn scaffold() {{\n{padding}    {snippet}\n{padding}}}\n")
}

fn fired_lints(src: &str) -> Vec<String> {
    let ws = Workspace::from_sources(&[(VPATH, src), ("docs/OBSERVABILITY.md", EMPTY_TAXONOMY)]);
    engine::run_all(&ws).iter().map(|d| d.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Patterns inside strings, raw strings, and comments never leak:
    /// no marker identifier escapes into a non-string token, and no
    /// lint fires on the file.
    #[test]
    fn containers_are_opaque_to_the_matcher(
        which in 0_usize..PATTERNS.len(),
        container in 0_usize..4,
        pad in 0_usize..4,
    ) {
        let (snippet, _) = PATTERNS[which];
        let src = embed(snippet, container, pad);

        let lexed = lex(&src);
        for t in &lexed.toks {
            let leaked = t.kind != TokKind::Str
                && MARKERS.iter().any(|m| t.text.contains(m));
            prop_assert!(
                !leaked,
                "container {container} leaked {:?} token {:?} from {src:?}",
                t.kind,
                t.text
            );
        }

        let fired = fired_lints(&src);
        prop_assert!(
            fired.is_empty(),
            "container {container} fired {fired:?} on {src:?}"
        );
    }

    /// The same patterns as code always fire their lint, wherever the
    /// statement sits in the function.
    #[test]
    fn code_always_fires(
        which in 0_usize..PATTERNS.len(),
        pad in 0_usize..4,
    ) {
        let (snippet, lint) = PATTERNS[which];
        let src = as_code(snippet, pad);
        let fired = fired_lints(&src);
        prop_assert!(
            fired.iter().any(|d| d.contains(lint)),
            "expected `{lint}` on {src:?}, fired {fired:?}"
        );
    }
}
