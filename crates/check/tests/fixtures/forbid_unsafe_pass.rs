// fixture-path: crates/newcrate/src/lib.rs
// fixture-expect: none

#![forbid(unsafe_code)]

//! A crate root carrying the attribute passes.
