// fixture-path: crates/service/src/spec.rs
// fixture-expect: none
// spec.rs is not a request-path module: unwrap is (reluctantly)
// allowed there, and lock-poison does not match plain unwraps.

pub fn parse(v: Option<u64>) -> u64 {
    v.unwrap()
}
