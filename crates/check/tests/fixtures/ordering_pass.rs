// fixture-path: crates/service/src/pool.rs
// fixture-expect: none
// Justified orderings pass: trailing same-line comments, a comment
// block immediately above, and `cmp::Ordering` variants never match.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn same_line(v: &AtomicU64) -> u64 {
    v.load(Ordering::Relaxed) // ordering: Relaxed — stats only
}

pub fn block_above(v: &AtomicU64) -> u64 {
    // ordering: Relaxed — a pure claim ticket; the data it indexes is
    // immutable, so no ordering is required.
    v.fetch_add(1, Ordering::Relaxed)
}

pub fn cmp_is_not_atomic(a: u64, b: u64) -> CmpOrdering {
    match a.cmp(&b) {
        CmpOrdering::Equal => CmpOrdering::Equal,
        other => other,
    }
}
