// fixture-path: crates/router/src/proxy.rs
// fixture-expect: no-unwrap-hot-path, lock-poison
// The router's proxy path is request-hot and lock-bearing: bare
// unwraps and poison-propagating lock().unwrap() must both be flagged
// there, exactly as on the serve-side hot path.

use std::sync::Mutex;

pub fn bare_unwrap(pending: Option<u64>) -> u64 {
    pending.unwrap()
}

pub fn poisoned_lock(pending: &Mutex<Vec<u64>>) -> usize {
    pending.lock().unwrap().len()
}
