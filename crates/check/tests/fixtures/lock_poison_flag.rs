// fixture-path: crates/store/src/store.rs
// fixture-expect: lock-poison
// Both forms must be flagged, including the call split across lines.

use std::sync::Mutex;

pub fn direct(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

pub fn split_across_lines(m: &Mutex<u64>) -> u64 {
    *m.lock()
        .expect("the lexer matches tokens, not lines")
}
