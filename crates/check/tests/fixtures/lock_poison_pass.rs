// fixture-path: crates/service/src/sync.rs
// fixture-expect: none
// The recovering idiom, test code, and pattern-shaped strings and
// comments must all pass.

use std::sync::{Mutex, MutexGuard};

pub fn lock_recovered<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// A comment spelling out .lock().unwrap() is not a violation.
pub const DOC: &str = "never write .lock().unwrap() in this crate";
pub const RAW: &str = r#"nor .lock().expect("…") inside raw strings"#;

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn tests_may_unwrap_locks() {
        let m = Mutex::new(1_u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
