// fixture-path: crates/service/src/cache.rs
// fixture-expect: no-unwrap-hot-path
// Bare unwraps and panics on the request path must be flagged.

pub fn bare_unwrap(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn explicit_panic(ok: bool) {
    if !ok {
        panic!("boom");
    }
}
