// fixture-path: crates/telemetry/src/lib.rs
// fixture-expect: none
// crates/telemetry's primitives are the audited exception: raw
// orderings there need no comment (the model checker covers them).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn audited_by_the_model_checker(v: &AtomicU64) {
    v.fetch_add(1, Ordering::Relaxed);
}
