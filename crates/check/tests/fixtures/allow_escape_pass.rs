// fixture-path: crates/service/src/server.rs
// fixture-expect: none
// check:allow escapes suppress a lint on the next statement — on the
// same line or from the comment block immediately above.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn same_line_escape(v: Option<u64>) -> u64 {
    v.unwrap() // check:allow(no-unwrap-hot-path): fixture demonstrates the escape
}

pub fn block_escape(v: &AtomicU64) -> u64 {
    // check:allow(ordering-audit): fixture demonstrates the escape
    v.load(Ordering::SeqCst)
}
