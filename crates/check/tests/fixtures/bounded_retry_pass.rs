// fixture-path: crates/service/src/client.rs
// fixture-expect: none

/// A bounded retry loop: the attempt counter referenced inside the
/// loop is the budget, so `bounded-retry` stays quiet.
pub fn resend_with_budget(max_attempts: u32) -> u32 {
    let mut attempt = 0;
    loop {
        attempt += 1;
        let retry_wanted = attempt < max_attempts;
        if !retry_wanted {
            return attempt;
        }
    }
}

/// A loop that never mentions retrying is out of scope entirely.
pub fn drain(mut remaining: u32) {
    while remaining > 0 {
        remaining -= 1;
    }
}
