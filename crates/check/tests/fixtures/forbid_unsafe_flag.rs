// fixture-path: crates/newcrate/src/lib.rs
// fixture-expect: forbid-unsafe
// A crate root without the attribute must be flagged; mentioning
// #![forbid(unsafe_code)] in a string does not count.

pub const NOT_THE_ATTR: &str = "#![forbid(unsafe_code)]";
