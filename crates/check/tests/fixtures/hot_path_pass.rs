// fixture-path: crates/service/src/wire.rs
// fixture-expect: none
// expect() with an invariant message is allowed on the hot path;
// unwrap_or_else and unwrap_or are different tokens; tests and
// strings never count.

pub fn documented_invariant(v: Option<u64>) -> u64 {
    v.expect("filled by the constructor, never absent")
}

pub fn recovering(v: Option<u64>) -> u64 {
    v.unwrap_or_else(|| 0).max(v.unwrap_or(0))
}

pub const HINT: &str = "calling .unwrap() here would be flagged";

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Option<u64> = Some(3);
        if v.unwrap() != 3 {
            panic!("unreachable");
        }
    }
}
