// fixture-path: crates/service/src/cache.rs
// fixture-expect: none
// Every deny pattern appears below — but only inside string literals,
// raw strings, and comments. A lexer that mis-tokenizes any of these
// would fire a lint and fail the golden test.

pub const IN_STRING: &str = "cache.lock().unwrap().get(key).unwrap(); panic!(\"boom\")";
pub const IN_RAW: &str = r#"v.load(Ordering::SeqCst); slot.lock().expect("poisoned")"#;
pub const IN_RAW_HASHED: &str = r##"nested "#quote#" then .unwrap() and panic!()"##;
pub const IN_BYTES: &[u8] = b".lock().unwrap()";

// line comment: m.lock().unwrap(); x.unwrap(); panic!("no"); Ordering::SeqCst
/* block comment: .lock().expect("poison") and Ordering::AcqRel
   /* nested block: panic!("still a comment") .unwrap() */
   still outer: v.store(1, Ordering::Release)
*/

pub fn char_literals_are_not_strings() -> (char, char) {
    // A quote char and an escaped quote must not open a string.
    ('"', '\'')
}

pub fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    x
}
