// fixture-path: crates/core/src/dse.rs
// fixture-expect: ordering-audit
// A raw ordering without an `// ordering:` comment must be flagged —
// including when the only nearby comment is a trailing one on the
// PREVIOUS code line (it belongs to that line, not this one).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(v: &AtomicU64) -> u64 {
    v.load(Ordering::SeqCst)
}

pub fn wrong_attachment(v: &AtomicU64) -> u64 {
    let unrelated = 1; // ordering: this justifies nothing below
    v.load(Ordering::Acquire) + unrelated
}
