// fixture-path: crates/service/src/client.rs
// fixture-expect: bounded-retry

/// A retry loop with no visible bound: nothing in the loop mentions
/// an attempt budget or a deadline, so it can spin forever.
pub fn resend_until_it_sticks(mut retry_wanted: bool) -> u32 {
    let mut sent = 0;
    while retry_wanted {
        sent += 1;
        if sent > 0 {
            retry_wanted = false;
        }
    }
    sent
}
