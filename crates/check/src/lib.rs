//! `drmap-check`: repo-specific static analysis plus a deterministic
//! concurrency model checker.
//!
//! Two layers, one crate:
//!
//! 1. **Lint engine** — a std-only, comment/string-aware Rust lexer
//!    ([`lexer`]) feeding deny-by-default, repo-specific lints
//!    ([`lints`]) with `file:line` diagnostics and inline
//!    `// check:allow(<lint>)` escapes. The lints encode invariants
//!    this repo otherwise enforces only in review: poison-recovering
//!    lock sites, panic-free request paths, justified atomic
//!    orderings, `#![forbid(unsafe_code)]` everywhere, and two drift
//!    checks keeping `proto.rs`, the `hello` capability list,
//!    `docs/PROTOCOL.md`, and `docs/OBSERVABILITY.md` in sync with
//!    the code.
//! 2. **Model checker** — a mini-loom ([`model`]): modeled atomics and
//!    virtual threads under a seedable, bounded-exhaustive DFS over
//!    every schedule, applied to the telemetry counter/histogram
//!    record-vs-snapshot-merge path and the cache single-flight state
//!    machine. Run by `#[test]`s and `drmap-check --models`; CI gates
//!    on ≥ 1000 interleavings with zero violations.
//!
//! See `docs/STATIC_ANALYSIS.md` for every lint's rationale, the
//! escape syntax, and how to add a lint or a model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod model;

pub use diag::{Diagnostic, Lint};
pub use engine::{run, run_all, Workspace};
pub use model::{explore, Config as ModelConfig, Model, Report as ModelReport};
