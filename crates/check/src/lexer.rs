//! A minimal, std-only Rust lexer for lint pattern matching.
//!
//! This is **not** a compiler front-end: it produces a flat token
//! stream good enough to match patterns like `.lock().unwrap()` or
//! `Ordering::SeqCst` without ever being fooled by the same characters
//! appearing inside string literals, raw strings, char literals, or
//! (nested) comments. It also tracks two pieces of context the lints
//! need:
//!
//! * **comments per line** — so `// check:allow(...)` escapes and
//!   `// ordering:` justifications can be resolved, and
//! * **`#[cfg(test)]` / `#[test]` regions** — tokens inside a
//!   test-gated item are marked `in_test` and exempt from the
//!   production-code lints.

use std::collections::{HashMap, HashSet};

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `Ordering`, …).
    Ident,
    /// A single punctuation character (`.`; `::` is two `:` tokens).
    Punct,
    /// A string or byte-string literal; `text` holds the raw inner
    /// bytes without quotes or raw-string hashes (escapes undecoded).
    Str,
    /// A character literal.
    Char,
    /// A numeric literal (integer or float, suffix included).
    Num,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One token, with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The lexeme kind.
    pub kind: TokKind,
    /// Identifier text, the punct character, or literal contents.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]`/`#[test]`
    /// item body (including the attribute itself).
    pub in_test: bool,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Every non-comment token in source order.
    pub toks: Vec<Tok>,
    /// Comment text by 1-based line. A block comment spanning several
    /// lines contributes one entry per line it covers.
    pub comments: HashMap<u32, Vec<String>>,
    /// Lines that contain at least one non-comment token.
    pub code_lines: HashSet<u32>,
}

impl Lexed {
    /// Does `line` carry a comment whose text satisfies `pred`?
    fn comment_on<F: Fn(&str) -> bool>(&self, line: u32, pred: &F) -> bool {
        self.comments
            .get(&line)
            .is_some_and(|cs| cs.iter().any(|c| pred(c)))
    }

    /// True when a comment matching `pred` is attached to `line`:
    /// either trailing on the same line, or in the contiguous run of
    /// comment-only lines immediately above it. A trailing comment on a
    /// *code* line above does **not** attach — it belongs to that line.
    pub fn attached_comment<F: Fn(&str) -> bool>(&self, line: u32, pred: F) -> bool {
        if self.comment_on(line, &pred) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.comments.contains_key(&l) && !self.code_lines.contains(&l) {
            if self.comment_on(l, &pred) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// The lints suppressed at `line` via `// check:allow(a, b)`.
    pub fn allows(&self, line: u32) -> Vec<String> {
        let mut names = Vec::new();
        let mut collect = |text: &str| {
            let mut rest = text;
            while let Some(at) = rest.find("check:allow(") {
                let inner = &rest[at + "check:allow(".len()..];
                if let Some(end) = inner.find(')') {
                    for name in inner[..end].split(',') {
                        names.push(name.trim().to_owned());
                    }
                    rest = &inner[end..];
                } else {
                    break;
                }
            }
        };
        if let Some(cs) = self.comments.get(&line) {
            cs.iter().for_each(|c| collect(c));
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.comments.contains_key(&l) && !self.code_lines.contains(&l) {
            if let Some(cs) = self.comments.get(&l) {
                cs.iter().for_each(|c| collect(c));
            }
            l -= 1;
        }
        names
    }
}

/// Lex `src` into tokens, comments, and test-region marks.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                let text = &src[i + 2..end];
                lx.comments
                    .entry(line)
                    .or_default()
                    .push(text.trim_start_matches(['/', '!']).trim().to_owned());
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; record its text on every line
                // it spans so attachment rules see the whole block.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let inner = text
                    .trim_start_matches("/*")
                    .trim_end_matches("*/")
                    .trim_matches(['*', '!', ' '])
                    .to_owned();
                let spanned = text.bytes().filter(|&c| c == b'\n').count() as u32;
                for l in line..=line + spanned {
                    lx.comments.entry(l).or_default().push(inner.clone());
                }
                line += spanned;
            }
            b'"' => {
                let (inner, consumed, newlines) = scan_string(&src[i..]);
                lx.push_tok(TokKind::Str, inner, line);
                line += newlines;
                i += consumed;
            }
            b'r' | b'b' if starts_raw_or_byte_string(&src[i..]) => {
                let (kind, inner, consumed, newlines) = scan_prefixed_string(&src[i..]);
                lx.push_tok(kind, inner, line);
                line += newlines;
                i += consumed;
            }
            b'\'' => {
                let (kind, text, consumed) = scan_quote(&src[i..]);
                lx.push_tok(kind, text, line);
                i += consumed;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                lx.push_tok(TokKind::Ident, src[i..j].to_owned(), line);
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len()
                    && (b[j] == b'_'
                        || b[j].is_ascii_alphanumeric()
                        || (b[j] == b'.' && b.get(j + 1).is_some_and(u8::is_ascii_digit)))
                {
                    j += 1;
                }
                lx.push_tok(TokKind::Num, src[i..j].to_owned(), line);
                i = j;
            }
            _ => {
                lx.push_tok(TokKind::Punct, (c as char).to_string(), line);
                i += 1;
            }
        }
    }
    mark_test_regions(&mut lx.toks);
    lx
}

impl Lexed {
    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.code_lines.insert(line);
        self.toks.push(Tok {
            kind,
            text,
            line,
            in_test: false,
        });
    }
}

/// Is `rest` (starting with `r` or `b`) a raw/byte string or raw
/// identifier? Returns true only for the string forms.
fn starts_raw_or_byte_string(rest: &str) -> bool {
    let b = rest.as_bytes();
    match b[0] {
        b'b' => matches!(b.get(1), Some(b'"')) || (b.get(1) == Some(&b'r') && raw_tail(&b[2..])),
        b'r' => raw_tail(&b[1..]),
        _ => false,
    }
}

/// After the `r`, raw strings look like `#*"`.
fn raw_tail(b: &[u8]) -> bool {
    let hashes = b.iter().take_while(|&&c| c == b'#').count();
    b.get(hashes) == Some(&b'"')
}

/// Scan a plain `"..."` string starting at the opening quote. Returns
/// (inner text, bytes consumed, newlines spanned).
fn scan_string(rest: &str) -> (String, usize, u32) {
    let b = rest.as_bytes();
    let mut i = 1usize;
    let mut newlines = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                return (rest[1..i].to_owned(), i + 1, newlines);
            }
            _ => i += 1,
        }
    }
    (rest[1..].to_owned(), b.len(), newlines)
}

/// Scan `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the prefix.
fn scan_prefixed_string(rest: &str) -> (TokKind, String, usize, u32) {
    let b = rest.as_bytes();
    let mut i = 0usize;
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let hashes = b[i..].iter().take_while(|&&c| c == b'#').count();
    i += hashes;
    debug_assert_eq!(b.get(i), Some(&b'"'));
    if !raw {
        let (inner, consumed, newlines) = scan_string(&rest[i..]);
        return (TokKind::Str, inner, i + consumed, newlines);
    }
    let open = i + 1;
    let closer = format!("\"{}", "#".repeat(hashes));
    let end = rest[open..]
        .find(&closer)
        .map_or(rest.len(), |n| open + n + closer.len());
    let inner_end = end.saturating_sub(closer.len()).max(open);
    let newlines = rest[..end].bytes().filter(|&c| c == b'\n').count() as u32;
    (
        TokKind::Str,
        rest[open..inner_end].to_owned(),
        end,
        newlines,
    )
}

/// Scan a `'…'` char literal or a `'ident` lifetime/label.
fn scan_quote(rest: &str) -> (TokKind, String, usize) {
    let b = rest.as_bytes();
    if b.get(1) == Some(&b'\\') {
        // Escaped char literal: find the closing quote.
        let mut i = 3;
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (TokKind::Char, rest[1..i.min(rest.len())].to_owned(), i + 1);
    }
    let is_ident_start =
        |c: u8| c == b'_' || c.is_ascii_alphabetic() || !c.is_ascii() /* unicode idents */;
    if b.get(1).copied().is_some_and(is_ident_start) && b.get(2) != Some(&b'\'') {
        // Lifetime or label: 'a, 'static, 'outer.
        let mut j = 2;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        return (TokKind::Lifetime, rest[1..j].to_owned(), j);
    }
    // Unescaped char literal like 'x' (or the odd '''/empty form).
    let close = rest[1..].find('\'').map_or(rest.len(), |n| 1 + n);
    (
        TokKind::Char,
        rest[1..close.min(rest.len())].to_owned(),
        close + 1,
    )
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` items as test code.
///
/// Recognizes an attribute whose inner identifiers are exactly `test`,
/// or start with `cfg` and contain `test` but not `not` (so
/// `#[cfg(not(test))]` still counts as production code). The marked
/// region runs from the attribute through the end of the following
/// item: its matching `}` if a brace opens before a top-level `;`,
/// otherwise the `;`.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // `#[` or `#![` — inner attributes never gate a test item.
        let Some(open) = toks.get(i + 1) else { break };
        if !(open.kind == TokKind::Punct && open.text == "[") {
            i += 1;
            continue;
        }
        // Collect inner idents up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut inner: Vec<String> = Vec::new();
        while j < toks.len() {
            match (&toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, name) => inner.push(name.to_owned()),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = inner == ["test"]
            || (inner.first().is_some_and(|f| f == "cfg")
                && inner.iter().any(|n| n == "test")
                && !inner.iter().any(|n| n == "not"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then span the item.
        let is_punct = |t: &Tok, c: &str| t.kind == TokKind::Punct && t.text == c;
        let mut k = j + 1;
        while k + 1 < toks.len() && is_punct(&toks[k], "#") && is_punct(&toks[k + 1], "[") {
            let mut d = 0usize;
            k += 1;
            while k < toks.len() {
                if is_punct(&toks[k], "[") {
                    d += 1;
                } else if is_punct(&toks[k], "]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut braces = 0usize;
        let mut end = k;
        while end < toks.len() {
            if is_punct(&toks[end], "{") {
                braces += 1;
            } else if is_punct(&toks[end], "}") {
                braces -= 1;
                if braces == 0 {
                    break;
                }
            } else if is_punct(&toks[end], ";") && braces == 0 {
                break;
            }
            end += 1;
        }
        let last = end.min(toks.len() - 1);
        for t in toks[i..=last].iter_mut() {
            t.in_test = true;
        }
        i = end + 1;
    }
}
