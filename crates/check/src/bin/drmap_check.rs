//! The `drmap-check` CLI: run the repo lints (deny-by-default) and,
//! with `--models`, the concurrency model suite.

use std::path::PathBuf;
use std::process::ExitCode;

use drmap_check::{engine, model, Lint, Workspace};

const USAGE: &str = "\
usage: drmap-check [--root PATH] [--deny-all] [--lint NAME]... [--list-lints]
       drmap-check --models [--seed N]

Runs the repo-specific lints over the workspace at --root (default: the
current directory) and exits non-zero on any diagnostic. --deny-all is
the (default) strict mode, spelled out for CI logs. --lint NAME limits
the run to the named lints. --models runs the deterministic concurrency
model suite instead and fails on any violation, truncation, or a
telemetry merge-model enumeration below 1000 interleavings.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut selected: Vec<Lint> = Vec::new();
    let mut models = false;
    let mut seed = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root needs a path"),
            },
            "--deny-all" => { /* strict mode is the default */ }
            "--models" => models = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage_error("--seed needs an integer"),
            },
            "--lint" => match args.next().as_deref().and_then(Lint::from_name) {
                Some(l) => selected.push(l),
                None => return usage_error("--lint needs a known lint name (see --list-lints)"),
            },
            "--list-lints" => {
                for lint in Lint::ALL {
                    println!("{:<20} {}", lint.name(), lint.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if models {
        return run_models(seed);
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "drmap-check: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if ws.files.is_empty() {
        eprintln!(
            "drmap-check: no sources found under {} (expected src/ or crates/*/src)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let lints: &[Lint] = if selected.is_empty() {
        &Lint::ALL
    } else {
        &selected
    };
    let diags = engine::run(&ws, lints);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "drmap-check: clean — {} files, {} lints, 0 diagnostics",
            ws.files.len(),
            lints.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "drmap-check: {} diagnostic(s) across {} files",
            diags.len(),
            ws.files.len()
        );
        ExitCode::FAILURE
    }
}

fn run_models(seed: u64) -> ExitCode {
    let reports = model::standard_suite(seed);
    let mut failed = false;
    for r in &reports {
        println!(
            "model {:<45} schedules={:<8} states={:<9} max-depth={:<3} violations={}",
            r.model,
            r.schedules,
            r.states,
            r.max_depth,
            r.violations.len()
        );
        for v in &r.violations {
            println!("  violation: {} (schedule {:?})", v.message, v.schedule);
        }
        if !r.verified() {
            failed = true;
        }
        if r.model.contains("record+merge") && r.schedules < 1000 {
            println!("  FAIL: merge model enumerated under 1000 interleavings");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("drmap-check: {msg}\n{USAGE}");
    ExitCode::from(2)
}
