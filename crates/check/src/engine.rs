//! Workspace loading and lint dispatch.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Lint};
use crate::lexer::{lex, Lexed};
use crate::lints;

/// One lexed source file, addressed by its workspace-relative path.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with unix separators.
    pub rel: String,
    /// The token stream, comments, and test regions.
    pub lexed: Lexed,
}

/// Everything the lints look at: the `src/` trees of the root package
/// and every `crates/*` member, plus the docs the drift lints compare
/// against. `vendor/`, `target/`, and fixture trees are never loaded
/// (only `src/` directories are walked).
#[derive(Debug, Default)]
pub struct Workspace {
    /// All loaded sources, sorted by path for deterministic output.
    pub files: Vec<SourceFile>,
    /// Raw text of `docs/*.md` files, keyed by relative path.
    pub docs: BTreeMap<String, String>,
}

impl Workspace {
    /// Load the workspace rooted at `root` from disk.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut sources = Vec::new();
        let src = root.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut sources)?;
        }
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
                .filter_map(|e| Some(e.ok()?.path()))
                .collect();
            members.sort();
            for member in members {
                let member_src = member.join("src");
                if member_src.is_dir() {
                    walk_rs(&member_src, root, &mut sources)?;
                }
            }
        }
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        let files = sources
            .into_iter()
            .map(|(rel, text)| SourceFile {
                rel,
                lexed: lex(&text),
            })
            .collect();

        let mut docs = BTreeMap::new();
        for name in ["docs/PROTOCOL.md", "docs/OBSERVABILITY.md"] {
            if let Ok(text) = fs::read_to_string(root.join(name)) {
                docs.insert(name.to_owned(), text);
            }
        }
        Ok(Workspace { files, docs })
    }

    /// Build a workspace from in-memory `(relative path, source)`
    /// pairs — used by the fixture tests.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .filter(|(rel, _)| rel.ends_with(".rs"))
            .map(|(rel, text)| SourceFile {
                rel: (*rel).to_owned(),
                lexed: lex(text),
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let docs = sources
            .iter()
            .filter(|(rel, _)| rel.ends_with(".md"))
            .map(|(rel, text)| ((*rel).to_owned(), (*text).to_owned()))
            .collect();
        Workspace { files, docs }
    }

    /// The file at `rel`, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Recursively collect `.rs` files under `dir` as `(rel, text)` pairs.
fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| Some(e.ok()?.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Run `selected` lints over the workspace, honoring inline
/// `// check:allow(<lint>)` escapes, and return the surviving
/// diagnostics sorted by (file, line, lint).
pub fn run(ws: &Workspace, selected: &[Lint]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for lint in selected {
        match lint {
            Lint::LockPoison => lints::lock_poison::run(ws, &mut diags),
            Lint::NoUnwrapHotPath => lints::unwrap_hot_path::run(ws, &mut diags),
            Lint::OrderingAudit => lints::ordering_audit::run(ws, &mut diags),
            Lint::ForbidUnsafe => lints::forbid_unsafe::run(ws, &mut diags),
            Lint::ProtoDocDrift => lints::proto_drift::run(ws, &mut diags),
            Lint::MetricsDocDrift => lints::metrics_drift::run(ws, &mut diags),
            Lint::BoundedRetry => lints::bounded_retry::run(ws, &mut diags),
        }
    }
    diags.retain(|d| {
        ws.file(&d.file).is_none_or(|f| {
            !f.lexed
                .allows(d.line)
                .iter()
                .any(|name| name == d.lint.name())
        })
    });
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    diags
}

/// Run every lint (the `--deny-all` default).
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    run(ws, &Lint::ALL)
}
