//! `forbid-unsafe`: every crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! The whole workspace is deliberately safe Rust (`std`-only, no FFI);
//! `forbid` — unlike `deny` — cannot be overridden further down the
//! tree, so the attribute on the root is a machine-checked guarantee,
//! not a default.

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct};
use crate::lints::seq_at;

/// Is `rel` a crate root? (`src/lib.rs`, `crates/*/src/lib.rs`, or
/// the `main.rs` of a crate that has no `lib.rs`.)
fn crate_roots(ws: &Workspace) -> Vec<&str> {
    let mut roots = Vec::new();
    let candidates: Vec<&str> = ws.files.iter().map(|f| f.rel.as_str()).collect();
    for rel in &candidates {
        let is_lib = *rel == "src/lib.rs"
            || (rel.starts_with("crates/")
                && rel.ends_with("/src/lib.rs")
                && rel.matches('/').count() == 3);
        let is_main_only = (*rel == "src/main.rs"
            || (rel.starts_with("crates/")
                && rel.ends_with("/src/main.rs")
                && rel.matches('/').count() == 3))
            && !candidates.contains(&rel.replace("main.rs", "lib.rs").as_str());
        if is_lib || is_main_only {
            roots.push(*rel);
        }
    }
    roots
}

/// Run the lint over every crate root.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for rel in crate_roots(ws) {
        let Some(file) = ws.file(rel) else { continue };
        let toks = &file.lexed.toks;
        let pattern = [
            (Punct, "#"),
            (Punct, "!"),
            (Punct, "["),
            (Ident, "forbid"),
            (Punct, "("),
            (Ident, "unsafe_code"),
            (Punct, ")"),
            (Punct, "]"),
        ];
        let found = (0..toks.len()).any(|i| seq_at(toks, i, &pattern));
        if !found {
            diags.push(Diagnostic {
                lint: Lint::ForbidUnsafe,
                file: rel.to_owned(),
                line: 1,
                message: "crate root is missing #![forbid(unsafe_code)]".to_owned(),
            });
        }
    }
}
