//! `no-unwrap-hot-path`: no `.unwrap()` or `panic!` in the server
//! request-path modules.
//!
//! A panic on the request path either aborts a worker (taking every
//! queued job with it) or poisons shared state; errors there must flow
//! through `ServiceError` to the one client that caused them.
//! `.expect("…invariant…")` is allowed — it documents why the branch
//! is impossible — but bare `.unwrap()` and `panic!` are not.

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct};
use crate::lints::seq_at;

/// The modules every request flows through.
const HOT_PATH: [&str; 7] = [
    "crates/service/src/server.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/pool.rs",
    "crates/service/src/wire.rs",
    "crates/service/src/engine.rs",
    "crates/router/src/proxy.rs",
    "crates/router/src/backend.rs",
];

/// Run the lint over the request-path modules.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !HOT_PATH.contains(&file.rel.as_str()) {
            continue;
        }
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            let unwrap_call = [(Punct, "."), (Ident, "unwrap"), (Punct, "("), (Punct, ")")];
            if seq_at(toks, i, &unwrap_call) {
                diags.push(Diagnostic {
                    lint: Lint::NoUnwrapHotPath,
                    file: file.rel.clone(),
                    line: toks[i].line,
                    message: ".unwrap() on the request path can kill a worker; return a \
                              ServiceError (or .expect() a documented invariant)"
                        .to_owned(),
                });
            }
            if seq_at(toks, i, &[(Ident, "panic"), (Punct, "!")]) {
                diags.push(Diagnostic {
                    lint: Lint::NoUnwrapHotPath,
                    file: file.rel.clone(),
                    line: toks[i].line,
                    message: "panic! on the request path aborts shared workers; return a \
                              ServiceError instead"
                        .to_owned(),
                });
            }
        }
    }
}
