//! `ordering-audit`: every raw atomic-ordering use outside
//! `crates/telemetry` needs an `// ordering:` justification comment.
//!
//! `crates/telemetry`'s primitives are audited as a unit (the model
//! checker in this crate exhaustively interleaves their record /
//! snapshot / merge paths), so they are exempt. Everywhere else, an
//! `Ordering::Relaxed` that is load-bearing and an `Ordering::SeqCst`
//! that is cargo-culted look identical — the comment is the reviewer's
//! evidence that someone thought about which one is required.

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct};
use crate::lints::seq_at;

const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Run the lint over every non-telemetry file.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if file.rel.starts_with("crates/telemetry/") {
            continue;
        }
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            let path = [(Ident, "Ordering"), (Punct, ":"), (Punct, ":")];
            if !seq_at(toks, i, &path) {
                continue;
            }
            let Some(variant) = toks.get(i + 3) else {
                continue;
            };
            if variant.kind != Ident || !VARIANTS.contains(&variant.text.as_str()) {
                continue;
            }
            let line = toks[i].line;
            if file
                .lexed
                .attached_comment(line, |c| c.contains("ordering:"))
            {
                continue;
            }
            diags.push(Diagnostic {
                lint: Lint::OrderingAudit,
                file: file.rel.clone(),
                line,
                message: format!(
                    "raw Ordering::{} needs an `// ordering:` comment justifying why this \
                     strength is required (or sufficient) here",
                    variant.text
                ),
            });
        }
    }
}
