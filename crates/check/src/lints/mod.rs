//! The individual lint passes.
//!
//! Each lint is a function `run(&Workspace, &mut Vec<Diagnostic>)`
//! that appends its findings; the engine applies `check:allow`
//! escapes and sorting afterwards. See `docs/STATIC_ANALYSIS.md` for
//! the rationale behind each lint and how to add one.

pub mod bounded_retry;
pub mod forbid_unsafe;
pub mod lock_poison;
pub mod metrics_drift;
pub mod ordering_audit;
pub mod proto_drift;
pub mod unwrap_hot_path;

use crate::lexer::{Tok, TokKind};

/// Does the token at `i` start the exact `(kind, text)` sequence?
/// An empty pattern text matches any token of that kind.
pub(crate) fn seq_at(toks: &[Tok], i: usize, pattern: &[(TokKind, &str)]) -> bool {
    pattern.iter().enumerate().all(|(k, (kind, text))| {
        toks.get(i + k)
            .is_some_and(|t| t.kind == *kind && (text.is_empty() || t.text == *text))
    })
}
