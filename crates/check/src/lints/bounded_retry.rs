//! `bounded-retry`: retry loops in service/store code must carry a
//! visible bound.
//!
//! An unbounded retry loop turns one transient fault into an infinite
//! busy loop — exactly the failure mode the fault-injection plan
//! exists to provoke. Any loop in `crates/service/src/` or
//! `crates/store/src/` whose tokens mention a retry (an identifier
//! containing `retry`/`retrie`) must, somewhere in the same loop
//! (header or body), reference the thing that bounds it: an
//! identifier containing `attempt`, `budget`, or `deadline`. The
//! bound lives in the code, not a comment, so it cannot rot silently;
//! a justified exception uses `// check:allow(bounded-retry)`.
//!
//! The exact identifier `retry_after_ms` does not count as retrying:
//! it is the protocol's backoff-advice *field*, plumbed through
//! encode/decode/display loops that never resend anything.

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct};

/// The trees where a retry loop touches live traffic or durable data.
const SCOPES: [&str; 3] = [
    "crates/service/src/",
    "crates/store/src/",
    "crates/router/src/",
];

/// Run the lint over every loop in the scoped trees.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !SCOPES.iter().any(|scope| file.rel.starts_with(scope)) {
            continue;
        }
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test || t.kind != Ident || !matches!(t.text.as_str(), "loop" | "while" | "for")
            {
                continue;
            }
            let Some(end) = loop_end(toks, i) else {
                continue;
            };
            let mut retries = false;
            let mut bounded = false;
            for t in &toks[i + 1..end] {
                if t.kind != Ident {
                    continue;
                }
                let name = t.text.to_ascii_lowercase();
                if (name.contains("retry") || name.contains("retrie")) && name != "retry_after_ms" {
                    retries = true;
                }
                if name.contains("attempt") || name.contains("budget") || name.contains("deadline")
                {
                    bounded = true;
                }
            }
            if retries && !bounded {
                diags.push(Diagnostic {
                    lint: Lint::BoundedRetry,
                    file: file.rel.clone(),
                    line: t.line,
                    message: "this retry loop has no visible bound; reference an attempt \
                              budget or a deadline inside the loop (identifiers containing \
                              `attempt`, `budget`, or `deadline`)"
                        .to_owned(),
                });
            }
        }
    }
}

/// The token index one past the closing brace of the loop starting at
/// `start` (the `loop`/`while`/`for` keyword). Header braces inside
/// parens or brackets (closure bodies, struct literals in the
/// condition) are skipped; `None` when no body brace is found — or
/// when a `for` turns out to be `impl Trait for Type` / `for<'a>`
/// rather than a loop (no bare `in` before the body brace).
fn loop_end(toks: &[crate::lexer::Tok], start: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut body = None;
    let mut saw_in = false;
    for (k, t) in toks.iter().enumerate().skip(start + 1) {
        if t.kind == Ident && t.text == "in" && depth == 0 {
            saw_in = true;
        }
        if t.kind != Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => {
                body = Some(k);
                break;
            }
            _ => {}
        }
    }
    if toks[start].text == "for" && !saw_in {
        return None;
    }
    let body = body?;
    let mut braces = 0usize;
    for (k, t) in toks.iter().enumerate().skip(body) {
        if t.kind != Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => braces += 1,
            "}" => {
                braces -= 1;
                if braces == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}
