//! `lock-poison`: `.lock().unwrap()` and `.lock().expect(…)` are
//! banned in non-test service/store/telemetry code.
//!
//! A panic on one thread must not cascade into every thread that
//! later touches the same mutex: every structure those crates guard is
//! left structurally valid on unwind, so lock sites must recover with
//! `lock().unwrap_or_else(|e| e.into_inner())` (the shared
//! `lock_recovered` helpers) instead of propagating the poison.

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct};
use crate::lints::seq_at;

const SCOPES: [&str; 4] = [
    "crates/service/src/",
    "crates/store/src/",
    "crates/telemetry/src/",
    "crates/router/src/",
];

/// Run the lint over every in-scope file.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !SCOPES.iter().any(|s| file.rel.starts_with(s)) {
            continue;
        }
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            let prefix = [
                (Punct, "."),
                (Ident, "lock"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "."),
            ];
            if !seq_at(toks, i, &prefix) {
                continue;
            }
            let sink = &toks[i + 5];
            if sink.kind == Ident && (sink.text == "unwrap" || sink.text == "expect") {
                diags.push(Diagnostic {
                    lint: Lint::LockPoison,
                    file: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        ".lock().{}() propagates mutex poisoning; recover with \
                         .lock().unwrap_or_else(|e| e.into_inner()) (see sync::lock_recovered)",
                        sink.text
                    ),
                });
            }
        }
    }
}
