//! `metrics-doc-drift`: registered metric names and
//! `docs/OBSERVABILITY.md` must agree, in both directions.
//!
//! Metric names are stable API — dashboards and the CI exposition
//! check key on them — but they are born as string literals scattered
//! through `registry.counter("…")` / `.gauge("…")` / `.histogram("…")`
//! calls. This lint collects every such literal from non-test
//! service/store/telemetry sources and diffs the set against the
//! backticked names in the *Metric taxonomy* tables of
//! `docs/OBSERVABILITY.md`:
//!
//! * registered but undocumented → flagged at the registration site;
//! * documented but never registered → flagged at the doc table row;
//! * registered through a non-literal name (`format!`, a variable) →
//!   flagged, because drift checking is impossible for names the
//!   lexer cannot see.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct, Str};

const DOC: &str = "docs/OBSERVABILITY.md";
const SCOPES: [&str; 4] = [
    "crates/service/src/",
    "crates/store/src/",
    "crates/telemetry/src/",
    "crates/router/src/",
];
const REGISTRARS: [&str; 3] = ["counter", "gauge", "histogram"];

/// Run the drift check; skipped entirely when no in-scope sources are
/// present (fixture roots without those crates).
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    // name -> first registration site.
    let mut registered: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut any_scope = false;
    for file in &ws.files {
        if !SCOPES.iter().any(|s| file.rel.starts_with(s)) {
            continue;
        }
        any_scope = true;
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test || t.kind != Ident || !REGISTRARS.contains(&t.text.as_str()) {
                continue;
            }
            // Method calls only: `.counter(…)`, never `fn counter(…)`.
            let is_method = i > 0 && toks[i - 1].kind == Punct && toks[i - 1].text == ".";
            let open = toks.get(i + 1);
            if !is_method || !open.is_some_and(|o| o.kind == Punct && o.text == "(") {
                continue;
            }
            // The argument, skipping at most one leading `&`.
            let mut a = i + 2;
            if toks
                .get(a)
                .is_some_and(|t| t.kind == Punct && t.text == "&")
            {
                a += 1;
            }
            match toks.get(a) {
                Some(arg) if arg.kind == Str => {
                    registered
                        .entry(arg.text.clone())
                        .or_insert((file.rel.clone(), arg.line));
                }
                Some(arg) if arg.kind == Punct && arg.text == ")" => {
                    // zero-arg call of an unrelated method named
                    // `counter`/`gauge`/`histogram`: not a registration.
                }
                Some(arg) => diags.push(Diagnostic {
                    lint: Lint::MetricsDocDrift,
                    file: file.rel.clone(),
                    line: arg.line,
                    message: format!(
                        ".{}(…) called with a non-literal name; metric names must be \
                         string literals so doc drift can be checked",
                        t.text
                    ),
                }),
                None => {}
            }
        }
    }
    if !any_scope {
        return;
    }

    let Some(doc) = ws.docs.get(DOC) else {
        diags.push(Diagnostic {
            lint: Lint::MetricsDocDrift,
            file: registered
                .values()
                .next()
                .map(|(f, _)| f.clone())
                .unwrap_or_else(|| SCOPES[0].to_owned()),
            line: 1,
            message: format!("{DOC} is missing, so registered metrics are undocumented"),
        });
        return;
    };
    let documented = documented_names(doc);

    for (name, (file, line)) in &registered {
        if !documented.iter().any(|(n, _)| n == name) {
            diags.push(Diagnostic {
                lint: Lint::MetricsDocDrift,
                file: file.clone(),
                line: *line,
                message: format!(
                    "metric {name:?} is registered here but missing from the Metric \
                     taxonomy tables in {DOC}"
                ),
            });
        }
    }
    for (name, line) in &documented {
        if !registered.contains_key(name) {
            diags.push(Diagnostic {
                lint: Lint::MetricsDocDrift,
                file: DOC.to_owned(),
                line: *line,
                message: format!(
                    "metric {name:?} is documented here but never registered in \
                     service/store/telemetry/router sources"
                ),
            });
        }
    }
}

/// Backticked metric names in the *Metric taxonomy* section's tables,
/// with their 1-based doc line.
fn documented_names(doc: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in doc.lines().enumerate() {
        if let Some(heading) = line.strip_prefix("## ") {
            in_section = heading.trim() == "Metric taxonomy";
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let mut rest = line;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let Some(len) = tail.find('`') else { break };
            let name = &tail[..len];
            if !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                out.push((name.to_owned(), idx as u32 + 1));
            }
            rest = &tail[len + 1..];
        }
    }
    out
}
