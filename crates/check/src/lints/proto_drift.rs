//! `proto-doc-drift`: the `Request` enum, the `hello` capability
//! list, and `docs/PROTOCOL.md` must agree.
//!
//! Three artifacts describe the protocol surface: the `Request` enum
//! in `crates/service/src/proto.rs` (what the server dispatches), the
//! string list returned by `capabilities()` (what `hello` advertises),
//! and `docs/PROTOCOL.md` (what operators read). This lint parses the
//! first two out of the token stream and cross-checks all three:
//!
//! 1. every `Request` variant must appear in [`VARIANT_CAPS`] — adding
//!    a verb without deciding which capability advertises it fails the
//!    build;
//! 2. the capability named there must actually be in the
//!    `capabilities()` list;
//! 3. the variant's kebab-case verb must appear (backticked) in
//!    `docs/PROTOCOL.md`;
//! 4. every capability string must itself be documented in
//!    `docs/PROTOCOL.md`.

use crate::diag::{Diagnostic, Lint};
use crate::engine::Workspace;
use crate::lexer::TokKind::{Ident, Punct, Str};
use crate::lints::seq_at;

const PROTO: &str = "crates/service/src/proto.rs";
const DOC: &str = "docs/PROTOCOL.md";

/// Which `hello` capability advertises each `Request` variant. `None`
/// marks a baseline verb available at every protocol version (the
/// pre-capability legacy verbs and the handshake itself); everything
/// else must be gated by a capability the server actually advertises.
const VARIANT_CAPS: [(&str, Option<&str>); 17] = [
    ("Hello", None),
    ("Ping", None),
    ("Stats", None),
    ("Shutdown", None),
    ("Submit", Some("jobs")),
    ("SetPolicy", Some("admin")),
    ("SetShardPolicy", Some("admin")),
    ("CacheClear", Some("admin")),
    ("CacheWarm", Some("store")),
    ("StoreCompact", Some("store")),
    ("Metrics", Some("metrics")),
    ("SetBounds", Some("set-bounds")),
    ("MetricsHistory", Some("metrics-history")),
    ("SlowTraces", Some("slow-traces")),
    ("SetSlowLog", Some("admin")),
    ("SetFaults", Some("faults")),
    ("SetOverload", Some("overload-control")),
];

/// Run the drift check; silently skipped when `proto.rs` is not part
/// of the analyzed tree (fixture roots without a service crate).
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(file) = ws.file(PROTO) else { return };
    let toks = &file.lexed.toks;
    let variants = request_variants(toks);
    let caps = capability_strings(toks);
    let doc = ws.docs.get(DOC).map(String::as_str);

    if variants.is_empty() {
        diags.push(Diagnostic {
            lint: Lint::ProtoDocDrift,
            file: PROTO.to_owned(),
            line: 1,
            message: "could not find any `enum Request` variants to check".to_owned(),
        });
        return;
    }

    for (name, line) in &variants {
        match VARIANT_CAPS.iter().find(|(v, _)| v == name) {
            None => diags.push(Diagnostic {
                lint: Lint::ProtoDocDrift,
                file: PROTO.to_owned(),
                line: *line,
                message: format!(
                    "Request::{name} is not mapped to a hello capability; add it to \
                     VARIANT_CAPS in crates/check/src/lints/proto_drift.rs and to the \
                     capabilities() list it belongs under"
                ),
            }),
            Some((_, Some(cap))) if !caps.iter().any(|(c, _)| c == cap) => {
                diags.push(Diagnostic {
                    lint: Lint::ProtoDocDrift,
                    file: PROTO.to_owned(),
                    line: *line,
                    message: format!(
                        "Request::{name} is advertised by capability {cap:?}, but \
                         capabilities() does not return {cap:?}"
                    ),
                });
            }
            _ => {}
        }
        let verb = kebab(name);
        if let Some(doc) = doc {
            if !doc.contains(&format!("`{verb}`")) {
                diags.push(Diagnostic {
                    lint: Lint::ProtoDocDrift,
                    file: PROTO.to_owned(),
                    line: *line,
                    message: format!("Request::{name} has no backticked `{verb}` entry in {DOC}"),
                });
            }
        }
    }

    if doc.is_none() {
        diags.push(Diagnostic {
            lint: Lint::ProtoDocDrift,
            file: PROTO.to_owned(),
            line: 1,
            message: format!("{DOC} is missing, so the protocol surface is undocumented"),
        });
        return;
    }
    let doc = doc.unwrap_or_default();
    for (cap, line) in &caps {
        if !doc.contains(&format!("`{cap}`")) {
            diags.push(Diagnostic {
                lint: Lint::ProtoDocDrift,
                file: PROTO.to_owned(),
                line: *line,
                message: format!(
                    "capability {cap:?} is advertised by hello but never documented in {DOC}"
                ),
            });
        }
    }
}

/// `SetShardPolicy` → `set-shard-policy`.
fn kebab(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('-');
        }
        out.push(c.to_ascii_lowercase());
    }
    out
}

/// The `(name, line)` of every variant of `pub enum Request`.
fn request_variants(toks: &[crate::lexer::Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let start = (0..toks.len()).find(|&i| {
        seq_at(
            toks,
            i,
            &[(Ident, "enum"), (Ident, "Request"), (Punct, "{")],
        )
    });
    let Some(start) = start else { return out };
    let mut brace = 0usize;
    let mut paren = 0usize;
    let mut prev_significant = String::from("{");
    for t in &toks[start + 2..] {
        match (t.kind, t.text.as_str()) {
            (Punct, "{") => brace += 1,
            (Punct, "}") => {
                if brace == 1 {
                    break;
                }
                brace -= 1;
            }
            (Punct, "(") => paren += 1,
            (Punct, ")") => paren = paren.saturating_sub(1),
            (Ident, name)
                if brace == 1
                    && paren == 0
                    && (prev_significant == "{" || prev_significant == ",") =>
            {
                out.push((name.to_owned(), t.line));
            }
            _ => {}
        }
        prev_significant = t.text.clone();
    }
    out
}

/// Every string literal inside `pub fn capabilities(…) { … }`.
fn capability_strings(toks: &[crate::lexer::Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let Some(start) =
        (0..toks.len()).find(|&i| seq_at(toks, i, &[(Ident, "fn"), (Ident, "capabilities")]))
    else {
        return out;
    };
    let mut brace = 0usize;
    let mut seen_open = false;
    for t in &toks[start..] {
        match (t.kind, t.text.as_str()) {
            (Punct, "{") => {
                brace += 1;
                seen_open = true;
            }
            (Punct, "}") => {
                brace -= 1;
                if seen_open && brace == 0 {
                    break;
                }
            }
            (Str, s) if seen_open => out.push((s.to_owned(), t.line)),
            _ => {}
        }
    }
    out
}
