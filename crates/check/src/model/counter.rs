//! Models of the telemetry `Counter`: a correct single-step
//! `fetch_add` and a deliberately broken load-then-store version the
//! checker must catch.

use super::Model;

const MAX_THREADS: usize = 4;

/// `threads` virtual threads each perform `increments` atomic
//  `fetch_add(1)` steps on one shared counter — the shape of
/// `telemetry::Counter::add` under contention.
#[derive(Debug, Clone, Copy)]
pub struct CounterModel {
    /// Number of incrementing threads (≤ 4).
    pub threads: usize,
    /// Increments per thread.
    pub increments: u8,
}

impl Default for CounterModel {
    fn default() -> Self {
        // 3 threads × 3 increments: 9!/(3!·3!·3!) = 1680 schedules.
        CounterModel {
            threads: 3,
            increments: 3,
        }
    }
}

/// Shared state: the counter plus each thread's program counter.
#[derive(Debug, Clone, Copy)]
pub struct CounterState {
    value: u64,
    pcs: [u8; MAX_THREADS],
}

impl Model for CounterModel {
    type State = CounterState;

    fn name(&self) -> &'static str {
        "telemetry-counter/fetch_add"
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn init(&self) -> CounterState {
        CounterState {
            value: 0,
            pcs: [0; MAX_THREADS],
        }
    }
    fn done(&self, s: &CounterState, tid: usize) -> bool {
        s.pcs[tid] >= self.increments
    }
    fn enabled(&self, _s: &CounterState, _tid: usize) -> bool {
        true // fetch_add is lock-free: always runnable.
    }
    fn step(&self, s: &mut CounterState, tid: usize) {
        s.value += 1; // one atomic fetch_add
        s.pcs[tid] += 1;
    }
    fn check_final(&self, s: &CounterState) -> Result<(), String> {
        let expect = (self.threads as u64) * u64::from(self.increments);
        if s.value == expect {
            Ok(())
        } else {
            Err(format!(
                "lost update: counter is {} after {} increments",
                s.value, expect
            ))
        }
    }
}

/// The same workload with a **non-atomic** read-modify-write: each
/// increment is two steps (load into a register, store register + 1).
/// The checker must find the classic lost-update interleaving — this
/// model is the negative control proving the explorer actually
/// explores.
#[derive(Debug, Clone, Copy)]
pub struct BrokenCounterModel {
    /// Number of incrementing threads (≤ 4).
    pub threads: usize,
    /// Increments per thread.
    pub increments: u8,
}

impl Default for BrokenCounterModel {
    fn default() -> Self {
        BrokenCounterModel {
            threads: 2,
            increments: 2,
        }
    }
}

/// Counter, per-thread registers, and per-thread program counters
/// (even pc = about to load, odd pc = about to store).
#[derive(Debug, Clone, Copy)]
pub struct BrokenCounterState {
    value: u64,
    regs: [u64; MAX_THREADS],
    pcs: [u8; MAX_THREADS],
}

impl Model for BrokenCounterModel {
    type State = BrokenCounterState;

    fn name(&self) -> &'static str {
        "broken-counter/load-then-store (negative control)"
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn init(&self) -> BrokenCounterState {
        BrokenCounterState {
            value: 0,
            regs: [0; MAX_THREADS],
            pcs: [0; MAX_THREADS],
        }
    }
    fn done(&self, s: &BrokenCounterState, tid: usize) -> bool {
        s.pcs[tid] >= 2 * self.increments
    }
    fn enabled(&self, _s: &BrokenCounterState, _tid: usize) -> bool {
        true
    }
    fn step(&self, s: &mut BrokenCounterState, tid: usize) {
        if s.pcs[tid].is_multiple_of(2) {
            s.regs[tid] = s.value; // load
        } else {
            s.value = s.regs[tid] + 1; // store (the race)
        }
        s.pcs[tid] += 1;
    }
    fn check_final(&self, s: &BrokenCounterState) -> Result<(), String> {
        let expect = (self.threads as u64) * u64::from(self.increments);
        if s.value == expect {
            Ok(())
        } else {
            Err(format!(
                "lost update: counter is {} after {} increments",
                s.value, expect
            ))
        }
    }
}
