//! A mini-loom: deterministic, bounded-exhaustive interleaving
//! enumeration over small concurrency models.
//!
//! A [`Model`] describes a handful of **virtual threads** operating on
//! a shared [`Model::State`]. Each [`Model::step`] is one *atomic*
//! action — one modeled atomic RMW, one lock acquisition, one guarded
//! read — and the explorer owns the scheduler: at every point it forks
//! the state and tries **every** runnable thread, depth-first, until
//! each complete schedule has been executed exactly once. Blocking is
//! modeled declaratively via [`Model::enabled`]; a state where no
//! thread is runnable but some are unfinished is reported as a
//! deadlock.
//!
//! The enumeration is exhaustive and deterministic. The `seed` only
//! rotates the order in which runnable threads are tried at each
//! depth, which changes *which* violation is found first (and what a
//! truncated run covers) but never the set of schedules — a property
//! the tests assert.

pub mod counter;
pub mod histogram;
pub mod singleflight;

/// A small concurrency model: virtual threads over shared state.
pub trait Model {
    /// The shared state, cheap to clone (the explorer clones it once
    /// per explored transition).
    type State: Clone;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
    /// Number of virtual threads.
    fn threads(&self) -> usize;
    /// The initial shared state.
    fn init(&self) -> Self::State;
    /// Has thread `tid` run to completion?
    fn done(&self, s: &Self::State, tid: usize) -> bool;
    /// May thread `tid` take a step now? (`false` models blocking on a
    /// held lock or an unfulfilled condition.)
    fn enabled(&self, s: &Self::State, tid: usize) -> bool;
    /// Execute exactly one atomic action of thread `tid`. Only called
    /// when `!done && enabled`.
    fn step(&self, s: &mut Self::State, tid: usize);
    /// Invariant checked after every step; return `Err` to report a
    /// violation mid-schedule.
    fn check_step(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }
    /// Invariant checked when every thread is done.
    fn check_final(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration limits and the choice-order seed.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rotates the per-depth order runnable threads are tried in.
    pub seed: u64,
    /// Stop after this many complete schedules (safety valve; the
    /// models here sit far below it).
    pub max_schedules: u64,
    /// Stop collecting after this many violations.
    pub max_violations: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0,
            max_schedules: 5_000_000,
            max_violations: 8,
        }
    }
}

/// One invariant violation, with the schedule that produced it: the
/// exact sequence of thread ids to replay.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Thread choice at each step, from the initial state.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

/// The result of exploring a model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Model name.
    pub model: &'static str,
    /// Complete schedules executed (distinct by construction: each is
    /// a distinct sequence of thread choices).
    pub schedules: u64,
    /// States visited (interior nodes included).
    pub states: u64,
    /// Longest schedule, in steps.
    pub max_depth: usize,
    /// Whether `max_schedules` truncated the enumeration.
    pub truncated: bool,
    /// Collected violations (deadlocks, failed invariants).
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when the enumeration completed with no violation.
    pub fn verified(&self) -> bool {
        !self.truncated && self.violations.is_empty()
    }
}

/// Exhaustively enumerate every interleaving of `model` under `cfg`.
pub fn explore<M: Model>(model: &M, cfg: &Config) -> Report {
    let mut report = Report {
        model: model.name(),
        schedules: 0,
        states: 0,
        max_depth: 0,
        truncated: false,
        violations: Vec::new(),
    };
    let mut trace = Vec::new();
    let state = model.init();
    dfs(model, cfg, state, &mut trace, &mut report);
    report
}

fn dfs<M: Model>(
    model: &M,
    cfg: &Config,
    state: M::State,
    trace: &mut Vec<usize>,
    report: &mut Report,
) {
    if report.schedules >= cfg.max_schedules {
        report.truncated = true;
        return;
    }
    report.states += 1;
    report.max_depth = report.max_depth.max(trace.len());

    let n = model.threads();
    let runnable: Vec<usize> = (0..n)
        .filter(|&tid| !model.done(&state, tid) && model.enabled(&state, tid))
        .collect();

    if runnable.is_empty() {
        if (0..n).all(|tid| model.done(&state, tid)) {
            report.schedules += 1;
            if let Err(message) = model.check_final(&state) {
                push_violation(report, cfg, trace, message);
            }
        } else {
            let stuck: Vec<usize> = (0..n).filter(|&t| !model.done(&state, t)).collect();
            push_violation(
                report,
                cfg,
                trace,
                format!("deadlock: threads {stuck:?} are blocked and can never run"),
            );
        }
        return;
    }

    // The seed rotates choice order per depth; the *set* explored is
    // identical for every seed because the loop still tries them all.
    let rot = if runnable.len() > 1 {
        (cfg.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left((trace.len() % 61) as u32) as usize)
            % runnable.len()
    } else {
        0
    };
    for k in 0..runnable.len() {
        let tid = runnable[(k + rot) % runnable.len()];
        let mut next = state.clone();
        model.step(&mut next, tid);
        trace.push(tid);
        if let Err(message) = model.check_step(&next) {
            push_violation(report, cfg, trace, message);
        } else {
            dfs(model, cfg, next, trace, report);
        }
        trace.pop();
        if report.truncated || report.violations.len() >= cfg.max_violations {
            return;
        }
    }
}

fn push_violation(report: &mut Report, cfg: &Config, trace: &[usize], message: String) {
    if report.violations.len() < cfg.max_violations {
        report.violations.push(Violation {
            schedule: trace.to_vec(),
            message,
        });
    }
}

/// Run every model shipped with the checker at its standard size and
/// return the reports — the CLI's `--models` mode and the CI gate.
pub fn standard_suite(seed: u64) -> Vec<Report> {
    let cfg = Config {
        seed,
        ..Config::default()
    };
    vec![
        explore(&counter::CounterModel::default(), &cfg),
        explore(&histogram::HistogramMergeModel::default(), &cfg),
        explore(&histogram::SnapshotTearModel, &cfg),
        explore(&singleflight::SingleFlightModel::default(), &cfg),
        explore(&singleflight::SingleFlightModel::leader_panics(), &cfg),
    ]
}
