//! A model of the cache's single-flight `get_or_compute` state
//! machine.
//!
//! Mirrors `DseCache`: callers take a mutex, inspect the key's slot,
//! and either become the **leader** (slot empty → compute outside the
//! lock, re-take the lock to publish), **wait** for the current leader
//! (slot in flight → block until published), or **hit** (slot ready).
//! A panicking leader publishes a failure so waiters wake with an
//! error instead of hanging — the PR 2 invariant this model pins down.
//!
//! Invariants proved over every interleaving: the value is computed
//! **exactly once**, every thread terminates with a value (or, in the
//! leader-panic variant, an error), and no schedule deadlocks. The
//! `racy_claim` variant removes the lock around the leadership claim
//! and exists to prove the checker catches the resulting double
//! compute.

use super::Model;

const MAX_THREADS: usize = 4;
const VALUE: u8 = 42;

/// What the key's cache slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Leading,
    Ready(u8),
    Failed,
}

/// What a thread walked away with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Got {
    Nothing,
    Val(u8),
    Err,
}

/// Per-thread program counter values.
mod pc {
    pub const LOCK: u8 = 0;
    pub const INSPECT: u8 = 1;
    pub const COMPUTE: u8 = 2;
    pub const RELOCK: u8 = 3;
    pub const PUBLISH: u8 = 4;
    pub const WAIT: u8 = 5;
    pub const DONE: u8 = 6;
}

/// The configurable single-flight model.
#[derive(Debug, Clone, Copy)]
pub struct SingleFlightModel {
    /// Number of concurrent callers of `get_or_compute` (≤ 4).
    pub threads: usize,
    /// The (first) leader's compute panics instead of producing a
    /// value; waiters must wake with an error, not hang.
    pub leader_fails: bool,
    /// Claim leadership from an **unlocked** read — the bug variant
    /// the checker must catch (double compute).
    pub racy_claim: bool,
}

impl Default for SingleFlightModel {
    fn default() -> Self {
        SingleFlightModel {
            threads: 3,
            leader_fails: false,
            racy_claim: false,
        }
    }
}

impl SingleFlightModel {
    /// The leader-panic variant at the standard size.
    pub fn leader_panics() -> Self {
        SingleFlightModel {
            leader_fails: true,
            ..Self::default()
        }
    }

    /// The lockless-claim bug variant (negative control).
    pub fn racy() -> Self {
        SingleFlightModel {
            racy_claim: true,
            ..Self::default()
        }
    }
}

/// Shared cache slot + modeled mutex + per-thread bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct FlightState {
    mutex: Option<u8>,
    slot: Slot,
    computes: u8,
    attempts: u8,
    pcs: [u8; MAX_THREADS],
    got: [Got; MAX_THREADS],
    /// Racy variant only: the slot value each thread read *before*
    /// acting on it (the stale basis of its leadership claim).
    seen: [Slot; MAX_THREADS],
}

impl Model for SingleFlightModel {
    type State = FlightState;

    fn name(&self) -> &'static str {
        if self.racy_claim {
            "cache-singleflight/racy-claim (negative control)"
        } else if self.leader_fails {
            "cache-singleflight/leader-panic"
        } else {
            "cache-singleflight/get_or_compute"
        }
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn init(&self) -> FlightState {
        FlightState {
            mutex: None,
            slot: Slot::Empty,
            computes: 0,
            attempts: 0,
            pcs: [pc::LOCK; MAX_THREADS],
            got: [Got::Nothing; MAX_THREADS],
            seen: [Slot::Empty; MAX_THREADS],
        }
    }
    fn done(&self, s: &FlightState, tid: usize) -> bool {
        s.pcs[tid] == pc::DONE
    }
    fn enabled(&self, s: &FlightState, tid: usize) -> bool {
        match s.pcs[tid] {
            // Taking the mutex blocks while another thread holds it
            // (with a racy claim, the "lock" step is a plain read and
            // never blocks).
            pc::LOCK => self.racy_claim || s.mutex.is_none(),
            pc::RELOCK => s.mutex.is_none(),
            // Waiters sleep on the condvar until the leader publishes.
            pc::WAIT => matches!(s.slot, Slot::Ready(_) | Slot::Failed),
            _ => true,
        }
    }
    fn step(&self, s: &mut FlightState, tid: usize) {
        match s.pcs[tid] {
            pc::LOCK => {
                if self.racy_claim {
                    // The bug: read the slot WITHOUT the lock; the
                    // claim below acts on this possibly-stale value.
                    s.seen[tid] = s.slot;
                } else {
                    s.mutex = Some(tid as u8);
                }
                s.pcs[tid] = pc::INSPECT;
            }
            pc::INSPECT => {
                // Inspect the slot and release the lock in one held-
                // lock critical section (other threads are blocked on
                // the mutex throughout, so one step is faithful). The
                // racy variant instead acts on the stale unlocked read.
                let basis = if self.racy_claim { s.seen[tid] } else { s.slot };
                match basis {
                    Slot::Empty => {
                        s.slot = Slot::Leading;
                        s.pcs[tid] = pc::COMPUTE;
                    }
                    Slot::Leading => s.pcs[tid] = pc::WAIT,
                    Slot::Ready(v) => {
                        s.got[tid] = Got::Val(v);
                        s.pcs[tid] = pc::DONE;
                    }
                    Slot::Failed => {
                        s.got[tid] = Got::Err;
                        s.pcs[tid] = pc::DONE;
                    }
                }
                if !self.racy_claim {
                    s.mutex = None;
                }
            }
            pc::COMPUTE => {
                // The leader computes outside the lock.
                s.attempts += 1;
                if !(self.leader_fails && s.attempts == 1) {
                    s.computes += 1;
                }
                s.pcs[tid] = pc::RELOCK;
            }
            pc::RELOCK => {
                s.mutex = Some(tid as u8);
                s.pcs[tid] = pc::PUBLISH;
            }
            pc::PUBLISH => {
                // Publish (or broadcast the failure) and wake waiters.
                if self.leader_fails && s.attempts == 1 && s.computes == 0 {
                    s.slot = Slot::Failed;
                    s.got[tid] = Got::Err;
                } else {
                    s.slot = Slot::Ready(VALUE);
                    s.got[tid] = Got::Val(VALUE);
                }
                s.mutex = None;
                s.pcs[tid] = pc::DONE;
            }
            pc::WAIT => {
                match s.slot {
                    Slot::Ready(v) => s.got[tid] = Got::Val(v),
                    _ => s.got[tid] = Got::Err,
                }
                s.pcs[tid] = pc::DONE;
            }
            _ => unreachable!("stepped a finished thread"),
        }
    }
    fn check_final(&self, s: &FlightState) -> Result<(), String> {
        if !self.leader_fails && s.computes != 1 {
            return Err(format!(
                "single-flight violated: {} computes for one key",
                s.computes
            ));
        }
        if self.leader_fails && s.computes != 0 {
            return Err(format!(
                "a failed leader must not be recomputed within the episode \
                 ({} computes)",
                s.computes
            ));
        }
        for tid in 0..self.threads {
            match (s.got[tid], self.leader_fails) {
                (Got::Nothing, _) => {
                    return Err(format!("thread {tid} finished empty-handed"));
                }
                (Got::Err, false) => {
                    return Err(format!("thread {tid} saw an error with a healthy leader"));
                }
                (Got::Val(_), true) => {
                    return Err(format!(
                        "thread {tid} saw a value although the leader panicked"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}
