//! Models of the telemetry `Histogram` record / snapshot / merge
//! path.
//!
//! `Histogram::record` is three relaxed atomic RMWs in a fixed order —
//! `buckets[b].fetch_add(1)`, `count.fetch_add(1)`,
//! `sum.fetch_add(v)` — and `snapshot` reads the same fields without
//! any lock. These models mirror that structure step for step and let
//! the explorer prove, over **every** interleaving:
//!
//! * no lost updates: the quiescent histogram is exact, and the
//!   associative merge of per-thread snapshots equals it bit for bit
//!   (the property `LayerPartial::merge`-style divide-and-conquer
//!   merging relies on);
//! * bounded tearing: a snapshot taken mid-flight is never *ahead* of
//!   the writes that actually happened, field by field.

use super::Model;

const MAX_THREADS: usize = 4;
const BUCKETS: usize = 2;

/// A per-thread or merged snapshot: the mergeable fields of
/// `telemetry::HistogramSnapshot` (bucket counts, count, sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snap {
    /// Per-bucket counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

impl Snap {
    const ZERO: Snap = Snap {
        buckets: [0; BUCKETS],
        count: 0,
        sum: 0,
    };

    /// Bucket-wise addition — the exact merge `HistogramSnapshot::merge`
    /// performs.
    pub fn merge(self, other: Snap) -> Snap {
        Snap {
            buckets: [
                self.buckets[0] + other.buckets[0],
                self.buckets[1] + other.buckets[1],
            ],
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

/// Three recorder threads record one value each into a **shared**
/// histogram; each record is the three atomic sub-steps of
/// `Histogram::record`, freely interleaved. At quiescence the model
/// checks the shared state is exact and equals every association
/// order of merging the per-thread contributions.
#[derive(Debug, Clone, Copy)]
pub struct HistogramMergeModel {
    /// Number of recorder threads (≤ 4).
    pub threads: usize,
    /// The value thread `i` records (also selects its bucket).
    pub values: [u64; MAX_THREADS],
}

impl Default for HistogramMergeModel {
    fn default() -> Self {
        // 3 threads × 3 sub-steps: 9!/(3!·3!·3!) = 1680 schedules,
        // ≥ the 1000 the CI gate demands.
        HistogramMergeModel {
            threads: 3,
            values: [5, 9, 12, 0],
        }
    }
}

const fn bucket_of(v: u64) -> usize {
    // A 2-bucket stand-in for the log-linear bucket index.
    if v < 8 {
        0
    } else {
        1
    }
}

/// The shared histogram plus each recorder's program counter.
#[derive(Debug, Clone, Copy)]
pub struct HistState {
    shared: Snap,
    pcs: [u8; MAX_THREADS],
}

impl Model for HistogramMergeModel {
    type State = HistState;

    fn name(&self) -> &'static str {
        "telemetry-histogram/record+merge"
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn init(&self) -> HistState {
        HistState {
            shared: Snap::ZERO,
            pcs: [0; MAX_THREADS],
        }
    }
    fn done(&self, s: &HistState, tid: usize) -> bool {
        s.pcs[tid] >= 3
    }
    fn enabled(&self, _s: &HistState, _tid: usize) -> bool {
        true // lock-free record: always runnable.
    }
    fn step(&self, s: &mut HistState, tid: usize) {
        let v = self.values[tid];
        match s.pcs[tid] {
            0 => s.shared.buckets[bucket_of(v)] += 1, // buckets[b].fetch_add(1)
            1 => s.shared.count += 1,                 // count.fetch_add(1)
            _ => s.shared.sum += v,                   // sum.fetch_add(v)
        }
        s.pcs[tid] += 1;
    }
    fn check_final(&self, s: &HistState) -> Result<(), String> {
        // The per-thread contribution snapshots (what each worker's
        // private histogram would hold).
        let contrib: Vec<Snap> = (0..self.threads)
            .map(|t| {
                let v = self.values[t];
                let mut one = Snap::ZERO;
                one.buckets[bucket_of(v)] = 1;
                one.count = 1;
                one.sum = v;
                one
            })
            .collect();
        // Every association order must agree…
        let left = contrib
            .iter()
            .copied()
            .fold(Snap::ZERO, |acc, s| acc.merge(s));
        let right = contrib
            .iter()
            .rev()
            .copied()
            .fold(Snap::ZERO, |acc, s| s.merge(acc));
        if left != right {
            return Err(format!("merge is not associative: {left:?} != {right:?}"));
        }
        // …and equal the quiescent shared histogram: any difference is
        // a lost update.
        if s.shared != left {
            return Err(format!(
                "lost update: shared {:?} != merged contributions {left:?}",
                s.shared
            ));
        }
        Ok(())
    }
}

/// Two recorders interleave with one snapshotting thread that reads
/// the fields in `snapshot`'s order (buckets, then count, then sum).
/// The snapshot may legitimately *tear* — the fields need not be
/// mutually consistent — but no field may ever exceed what the
/// recorders have actually completed, and the final state must still
/// be exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotTearModel;

/// Shared histogram, the observer's partial snapshot, and pcs
/// (threads 0..2 record, thread 2 snapshots).
#[derive(Debug, Clone, Copy)]
pub struct TearState {
    shared: Snap,
    observed: Snap,
    pcs: [u8; MAX_THREADS],
}

const TEAR_VALUES: [u64; 2] = [3, 11];

impl Model for SnapshotTearModel {
    type State = TearState;

    fn name(&self) -> &'static str {
        "telemetry-histogram/snapshot-tearing"
    }
    fn threads(&self) -> usize {
        3
    }
    fn init(&self) -> TearState {
        TearState {
            shared: Snap::ZERO,
            observed: Snap::ZERO,
            pcs: [0; MAX_THREADS],
        }
    }
    fn done(&self, s: &TearState, tid: usize) -> bool {
        s.pcs[tid] >= 3
    }
    fn enabled(&self, _s: &TearState, _tid: usize) -> bool {
        true
    }
    fn step(&self, s: &mut TearState, tid: usize) {
        if tid < 2 {
            let v = TEAR_VALUES[tid];
            match s.pcs[tid] {
                0 => s.shared.buckets[bucket_of(v)] += 1,
                1 => s.shared.count += 1,
                _ => s.shared.sum += v,
            }
        } else {
            match s.pcs[tid] {
                0 => s.observed.buckets = s.shared.buckets,
                1 => s.observed.count = s.shared.count,
                _ => s.observed.sum = s.shared.sum,
            }
        }
        s.pcs[tid] += 1;
    }
    fn check_step(&self, s: &TearState) -> Result<(), String> {
        // Monotone-read bound: the observer can never have seen more
        // than the recorders have written so far (and `shared` itself
        // only grows, so comparing against the current shared state is
        // conservative in the right direction).
        for b in 0..BUCKETS {
            if s.observed.buckets[b] > s.shared.buckets[b] {
                return Err(format!(
                    "snapshot read bucket {b} ahead of writes: {:?} > {:?}",
                    s.observed.buckets, s.shared.buckets
                ));
            }
        }
        if s.observed.count > s.shared.count || s.observed.sum > s.shared.sum {
            return Err(format!(
                "snapshot ahead of writes: observed {:?}, shared {:?}",
                s.observed, s.shared
            ));
        }
        Ok(())
    }
    fn check_final(&self, s: &TearState) -> Result<(), String> {
        let mut expect = Snap::ZERO;
        for v in TEAR_VALUES {
            expect.buckets[bucket_of(v)] += 1;
            expect.count += 1;
            expect.sum += v;
        }
        if s.shared != expect {
            return Err(format!(
                "lost update under a concurrent snapshot: {:?} != {expect:?}",
                s.shared
            ));
        }
        Ok(())
    }
}
