//! Diagnostics and the lint registry.

use std::fmt;

/// Every lint `drmap-check` knows, deny-by-default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `.lock().unwrap()` / `.lock().expect(…)` in non-test
    /// service/store/telemetry code: must use the poison-recovering
    /// `unwrap_or_else(|e| e.into_inner())` idiom instead.
    LockPoison,
    /// `.unwrap()` / `panic!` in the server request-path modules.
    NoUnwrapHotPath,
    /// A raw `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` use
    /// outside `crates/telemetry` without an `// ordering:`
    /// justification comment.
    OrderingAudit,
    /// A crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// `Request` variants, the `hello` capability list, and
    /// `docs/PROTOCOL.md` out of sync.
    ProtoDocDrift,
    /// Registered metric names and `docs/OBSERVABILITY.md` out of sync.
    MetricsDocDrift,
    /// A retry loop in service/store code with no visible bound — it
    /// must reference an attempt budget or a deadline.
    BoundedRetry,
}

impl Lint {
    /// Every lint, in reporting order.
    pub const ALL: [Lint; 7] = [
        Lint::LockPoison,
        Lint::NoUnwrapHotPath,
        Lint::OrderingAudit,
        Lint::ForbidUnsafe,
        Lint::ProtoDocDrift,
        Lint::MetricsDocDrift,
        Lint::BoundedRetry,
    ];

    /// The kebab-case name used in diagnostics and `check:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::LockPoison => "lock-poison",
            Lint::NoUnwrapHotPath => "no-unwrap-hot-path",
            Lint::OrderingAudit => "ordering-audit",
            Lint::ForbidUnsafe => "forbid-unsafe",
            Lint::ProtoDocDrift => "proto-doc-drift",
            Lint::MetricsDocDrift => "metrics-doc-drift",
            Lint::BoundedRetry => "bounded-retry",
        }
    }

    /// One-line description for `--list-lints`.
    pub fn summary(self) -> &'static str {
        match self {
            Lint::LockPoison => {
                "mutex locks must recover from poisoning via unwrap_or_else(|e| e.into_inner())"
            }
            Lint::NoUnwrapHotPath => {
                "no .unwrap()/panic! in server request-path modules (server, cache, pool, wire, engine)"
            }
            Lint::OrderingAudit => {
                "raw atomic Ordering uses outside crates/telemetry need an `// ordering:` justification"
            }
            Lint::ForbidUnsafe => "every crate root must carry #![forbid(unsafe_code)]",
            Lint::ProtoDocDrift => {
                "proto.rs Request variants, the hello capability list, and docs/PROTOCOL.md must agree"
            }
            Lint::MetricsDocDrift => {
                "registered metric names and docs/OBSERVABILITY.md must agree, both directions"
            }
            Lint::BoundedRetry => {
                "retry loops in service/store code must reference an attempt budget or deadline"
            }
        }
    }

    /// Parse a lint name as written in `check:allow(...)` or `--lint`.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.iter().copied().find(|l| l.name() == name)
    }
}

/// One finding, pointing at a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path, unix separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.name(),
            self.message
        )
    }
}
