//! A minimal, std-only stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness so the workspace builds and benches run **fully
//! offline**.
//!
//! It implements the subset of criterion's API the `drmap-bench` targets
//! use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple warm-up + timed-batch measurement loop. There is no
//! statistical analysis, outlier detection, or HTML report; each
//! benchmark prints one line: mean wall-clock time per iteration and, if
//! a throughput was declared, elements or bytes per second.
//!
//! Swap this crate for the real criterion in `[workspace.dependencies]`
//! when a registry is reachable; no bench source needs to change.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long the timed measurement phase aims to run per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Upper bound on timed iterations, to keep very fast functions bounded.
const MAX_ITERS: u64 = 100_000;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Create an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; drives the measurement loop.
pub struct Bencher {
    /// Mean time per iteration measured by the last `iter` call.
    mean: Duration,
}

impl Bencher {
    /// Measure `f`: one warm-up call, then enough timed iterations to
    /// fill the measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (TARGET_MEASURE.as_nanos() / estimate.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{name:<50} {mean:>12.2?}/iter  {:>12.0} elem/s", per_sec(n))
        }
        Some(Throughput::Bytes(n)) => {
            println!("{name:<50} {mean:>12.2?}/iter  {:>12.0} B/s", per_sec(n))
        }
        None => println!("{name:<50} {mean:>12.2?}/iter"),
    }
}

/// Entry point handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.mean, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed by one iteration of each benchmark.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.mean, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.mean, self.throughput);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
