//! Offline no-op stand-in for [serde](https://crates.io/crates/serde).
//!
//! The workspace's types carry `#[cfg_attr(feature = "serde",
//! derive(serde::Serialize, serde::Deserialize))]` attributes. This stub
//! lets those attributes resolve and compile without network access: the
//! re-exported derives expand to nothing, so no impls are generated and
//! no serde-based (de)serialization actually works. The service crate's
//! wire format is hand-rolled JSON and does not depend on serde.
//!
//! Swap `vendor/serde` and `vendor/serde_derive` for the real crates in
//! `[workspace.dependencies]` to get working serde support; no source
//! using the attributes needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; see crate docs).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods; see crate docs).
pub trait DeserializeMarker<'de> {}
