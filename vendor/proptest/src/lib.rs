//! A minimal, std-only stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework so the workspace's property tests run
//! **fully offline**.
//!
//! It implements the subset of proptest's API the workspace tests use:
//! the [`Strategy`] trait with `prop_map`, strategies for integer/float
//! ranges, tuples, [`Just`], `prop::collection::vec`, `prop::bool::ANY`,
//! `prop_oneof!`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros. Differences from the real crate:
//!
//! * no shrinking — a failing case reports the assertion directly;
//! * deterministic seeding per test name (reproducible by construction,
//!   no `PROPTEST_*` environment handling);
//! * `prop_assert*` panics immediately instead of returning `Result`.
//!
//! Swap this crate for the real proptest in `[workspace.dependencies]`
//! when a registry is reachable; no test source needs to change.

use std::ops::{Range, RangeInclusive};

/// A deterministic xorshift64* generator seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for a `proptest!` block.
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generates random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                self.start() + rng.below((self.end() - self.start()) as u64 + 1) as $t
            }
        }
    )+};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Strategy built by [`prop_oneof!`]: picks one branch uniformly.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from boxed branch strategies (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true` or `false` uniformly.
    pub struct AnyBool;

    /// The uniform boolean strategy.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Pick one of several strategies with a uniform choice per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $( options.push(::std::boxed::Box::new($strategy)); )+
        $crate::OneOf::new(options)
    }};
}

/// Assert a property; panics with the failing expression on violation.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Assert equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs its
/// body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    /// The crate root, for `prop::collection::vec` / `prop::bool::ANY`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Map, OneOf, ProptestConfig,
        Strategy, TestRng,
    };
}
