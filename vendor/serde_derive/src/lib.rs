//! No-op stand-ins for serde's derive macros so `--features serde`
//! compiles **offline**. The derives expand to nothing: the annotated
//! types gain no `Serialize`/`Deserialize` impls, but every
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`
//! attribute in the workspace resolves and type-checks. Swap
//! `vendor/serde*` for the real crates in `[workspace.dependencies]`
//! to get working serde support.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
