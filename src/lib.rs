//! # drmap
//!
//! Facade crate for the reproduction of **DRMap: A Generic DRAM Data
//! Mapping Policy for Energy-Efficient Processing of Convolutional Neural
//! Networks** (Putra, Hanif, Shafique — DAC 2020).
//!
//! This crate re-exports the three workspace members:
//!
//! * [`dram`] ([`drmap_dram`]) — command-level DRAM timing/energy
//!   simulator for DDR3 and SALP-1/2/MASA (the Ramulator + VAMPIRE
//!   substitute),
//! * [`cnn`] ([`drmap_cnn`]) — CNN layer shapes, networks (AlexNet,
//!   VGG-16) and the Table II accelerator configuration,
//! * [`core`] ([`drmap_core`]) — mapping policies (Table I), layer
//!   partitioning/scheduling, the analytical EDP model (Eq. 1–3) and the
//!   DSE engine (Algorithm 1).
//!
//! ## Quickstart
//!
//! Profile an architecture, build the analytical model, and explore one
//! AlexNet layer:
//!
//! ```no_run
//! use drmap::prelude::*;
//!
//! let profiler = Profiler::table_ii()?;
//! let table = profiler.cost_table(DramArch::Salp2);
//! let model = EdpModel::new(Geometry::salp_2gb_x8(), table, AcceleratorConfig::table_ii());
//! let engine = DseEngine::new(model, DseConfig::default());
//! let network = Network::alexnet();
//! let conv2 = &network.layers()[1];
//! let result = engine.explore_layer(conv2)?;
//! println!("minimum-EDP config for {}: {}", conv2.name, result.best);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every figure and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use drmap_cnn as cnn;
pub use drmap_core as core;
pub use drmap_dram as dram;

/// One-stop re-exports of the commonly used types from all three crates.
pub mod prelude {
    pub use drmap_cnn::prelude::*;
    pub use drmap_core::prelude::*;
    pub use drmap_dram::prelude::*;
}
